"""The HTTP/SSE edge: what production clients actually hit.

The PR-5 :class:`~repro.service.gateway.WorkflowGateway` speaks a bespoke
pickle-over-TCP protocol — fine for trusted Python peers, useless for the
"millions of users" tier of the paper's ecosystem, which arrives over HTTP
through load balancers and language-agnostic tooling. :class:`HttpEdge` is
an HTTP/1.1 front-end built on stdlib ``asyncio`` (no third-party server
dependency) that translates a JSON surface onto the gateway's existing
session machinery:

====== ============================ ==========================================
Verb   Path                         Meaning
====== ============================ ==========================================
POST   ``/v1/session``              open (or resume) a tenant session
DELETE ``/v1/session/{id}``         release a session immediately (goodbye)
POST   ``/v1/tasks``                submit one task (202, or 429 busy)
GET    ``/v1/tasks/{id}``           status / result of one task
POST   ``/v1/tasks/{id}/cancel``    cancel a still-queued task
GET    ``/v1/tenants/me/stats``     the calling tenant's admission counters
GET    ``/v1/stream``               SSE result stream (``Last-Event-ID``
                                    resume; ``result``/``error``/``done``)
GET    ``/v1/healthz``              liveness + per-shard readiness + session
                                    store writer lag (no auth; 503 when no
                                    shard can take work)
GET    ``/metrics``                 Prometheus text-format scrape (no auth)
GET    ``/v1/stats``                ops snapshot: all tenants, shards, store
                                    lag (no auth; feeds ``repro_top``)
GET    ``/v1/alerts``               live SLO burn alerts, per-tenant window
                                    state, stragglers, sick workers (no auth)
====== ============================ ==========================================

Every edge session is an **in-process gateway peer**: the edge registers a
local sink (:meth:`WorkflowGateway.attach_local`) and injects protocol
frames through :meth:`WorkflowGateway.post`, so submissions take exactly the
``pack_apply_message`` path remote TCP clients take — token auth, fair-share
admission, per-tenant backpressure (surfaced as HTTP **429** with a
``Retry-After`` header), dedup, replay, and walltime enforcement all apply
unchanged, and a tenant's HTTP and TCP traffic share one set of admission
counters.

Auth mirrors the TCP handshake: ``Authorization: Bearer <token>`` checked
against the gateway's TokenStore scope ``gateway/<tenant>``, with the tenant
named by the ``X-Repro-Tenant`` header. Session-scoped requests additionally
carry ``X-Repro-Session`` / ``X-Repro-Session-Token`` (query parameters
``session`` / ``session_token`` work too, for SSE consumers that cannot set
headers). An unknown session id with valid credentials is *resumed* through
the gateway (this is how clients survive an edge restart); a session the
gateway no longer knows answers **410 Gone**, the signal for SDKs to open a
fresh session and resubmit unfinished work.

Submissions name their callable either as ``fn`` — a name registered via
:meth:`HttpEdge.register` (or, when ``allow_dotted_paths`` is enabled, an
importable ``"pkg.mod:func"`` path) invoked with JSON args — or as
``payload_b64``, a base64 ``pack_apply_message`` buffer (the SDK's
arbitrary-callable path; exactly what TCP clients send).

The SSE stream maps ``Last-Event-ID`` straight onto the session's
``last_seq`` replay machinery: attaching re-runs the gateway's resume
handshake with that cursor, so the replayed suffix is exactly the unseen
results. One stream per session is live at a time; a newer attach gracefully
ends the older one with a ``done`` event. A stream whose reader stalls past
its bounded buffer is dropped (the results stay in the replay buffer for the
next resume) so one slow consumer cannot pin edge memory.
"""

from __future__ import annotations

import asyncio
import base64
import importlib
import json
import logging
import threading
import time
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service import protocol
from repro.service.api_types import (
    SessionInfo,
    TaskAccepted,
    TenantStats,
    make_task_id,
    result_frame_to_status,
    split_task_id,
)
from repro.service.gateway import WorkflowGateway
from repro.serialize import pack_apply_message
from repro.utils.ids import make_uid

logger = logging.getLogger(__name__)

#: Reason phrases for the subset of statuses the edge answers with.
_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    410: "Gone", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: Hint (seconds) clients should wait before retrying a 429; also sent as
#: ``retry_after_s`` in the body for sub-second-capable SDKs (the header is
#: integer-valued per RFC 9110).
RETRY_AFTER_S = 0.1

#: Per-stream buffered-event bound: a reader this far behind is disconnected
#: and must resume via Last-Event-ID (results stay in the replay buffer).
STREAM_QUEUE_LIMIT = 256

#: Largest client-supplied ``client_task_id`` the edge accepts (2**53 - 1,
#: the largest integer every JSON consumer can represent exactly).
MAX_CLIENT_TASK_ID = (1 << 53) - 1

_STREAM_CLOSE = object()  # sentinel: end the SSE stream gracefully


class _HttpError(Exception):
    """Internal control flow: unwind a handler into one JSON error reply."""

    def __init__(self, status: int, reason: str, headers: Optional[Dict[str, str]] = None):
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.headers = headers or {}


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: Dict[str, str],
                 headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Dict[str, Any]:
        if not self.body:
            return {}
        try:
            obj = json.loads(self.body)
        except ValueError as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(obj, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return obj


class _EdgeSession:
    """Edge-side state for one gateway session (one local-peer identity)."""

    def __init__(self, identity: str, tenant: str):
        self.identity = identity
        self.tenant = tenant
        self.info: Optional[SessionInfo] = None
        self.next_cid = 0
        self.last_used = time.monotonic()
        #: cid -> future resolved by the accepted/busy/error reply.
        self.acks: Dict[int, asyncio.Future] = {}
        #: cid -> future resolved by a cancel_reply.
        self.cancels: Dict[int, asyncio.Future] = {}
        #: Pending welcome/auth_error waiter for an in-flight hello.
        self.hello_waiter: Optional[asyncio.Future] = None
        #: The one live SSE stream queue (newer attach supersedes older).
        self.stream: Optional[asyncio.Queue] = None

    @property
    def session_id(self) -> str:
        assert self.info is not None
        return self.info.session

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def claim_cid(self, requested: Optional[int]) -> int:
        if requested is not None:
            if not 0 <= requested <= MAX_CLIENT_TASK_ID:
                raise _HttpError(
                    400,
                    f"client_task_id must be in [0, {MAX_CLIENT_TASK_ID}]",
                )
            # Keep the auto-assign counter ahead of explicit ids so the two
            # schemes can mix within a session without colliding.
            self.next_cid = max(self.next_cid, requested + 1)
            return requested
        cid = self.next_cid
        self.next_cid += 1
        return cid


class HttpEdge:
    """Serve a :class:`WorkflowGateway` over HTTP/1.1 + Server-Sent-Events.

    Runs its own asyncio event loop on a daemon thread; ``start()`` returns
    once the port is bound. Defaults come from the kernel's
    ``Config.service_http_*`` knobs; the token store defaults to the
    gateway's. Use as a context manager or call ``stop()``.
    """

    def __init__(
        self,
        gateway: WorkflowGateway,
        host: Optional[str] = None,
        port: Optional[int] = None,
        registry: Optional[Dict[str, Callable]] = None,
        allow_dotted_paths: bool = False,
        max_body: Optional[int] = None,
        sse_keepalive_s: Optional[float] = None,
        request_timeout: float = 30.0,
    ):
        cfg = gateway.dfk.config
        self.gateway = gateway
        self._host = host if host is not None else cfg.service_http_host
        self._port = port if port is not None else cfg.service_http_port
        self.max_body = max_body or cfg.service_http_max_body
        self.sse_keepalive_s = sse_keepalive_s or cfg.service_http_keepalive_s
        self.request_timeout = request_timeout
        self.registry: Dict[str, Callable] = dict(registry or {})
        self.allow_dotted_paths = allow_dotted_paths

        self.host: str = self._host
        self.port: int = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopping = False
        #: session id -> edge session; mutated only on the loop thread.
        self._sessions: Dict[str, _EdgeSession] = {}
        self._sweeper: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "HttpEdge":
        """Start the edge's asyncio server on its own daemon thread and block until it is accepting connections (raises on bind failure)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._run, name="http-edge", daemon=True)
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise RuntimeError(f"HTTP edge failed to start: {self._startup_error!r}")
        if not self._started.is_set():
            raise RuntimeError("HTTP edge did not start within 10s")
        return self

    def stop(self) -> None:
        """Shut the server down: close listeners, end live SSE streams, detach every HTTP session from the gateway. Idempotent."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        self._stopping = True
        try:
            loop.call_soon_threadsafe(lambda: asyncio.ensure_future(self._shutdown()))
        except RuntimeError:
            pass  # loop already closed
        thread.join(timeout=5)
        self._thread = None

    def __enter__(self) -> "HttpEdge":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def register(self, name: str, func: Callable) -> None:
        """Expose ``func`` to JSON submissions under ``fn: name``."""
        self.registry[name] = func

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle_connection, self._host, self._port)
            )
            self.host, self.port = self._server.sockets[0].getsockname()[:2]
            self._sweeper = loop.create_task(self._sweep_idle_sessions())
            self._started.set()
            loop.run_forever()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._started.set()
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            except Exception:  # noqa: BLE001
                pass
            loop.close()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
        for ses in list(self._sessions.values()):
            self._close_session(ses, goodbye=True)
        if self._sweeper is not None:
            self._sweeper.cancel()
        loop = asyncio.get_running_loop()
        loop.stop()

    def _close_session(self, ses: _EdgeSession, goodbye: bool) -> None:
        self._sessions.pop(ses.info.session if ses.info else "", None)
        if ses.stream is not None:
            self._stream_put(ses, _STREAM_CLOSE)
            ses.stream = None
        if goodbye:
            try:
                self.gateway.post(ses.identity, protocol.goodbye())
            except Exception:  # noqa: BLE001 - gateway may already be down
                pass
        self.gateway.detach_local(ses.identity)

    async def _sweep_idle_sessions(self) -> None:
        """Release sessions no request or stream has touched for the TTL.

        Local peers never 'disconnect', so without this sweep an abandoned
        curl session would pin its replay buffer forever — the edge applies
        the same TTL the gateway applies to vanished TCP clients.
        """
        ttl = self.gateway.session_ttl_s
        while True:
            await asyncio.sleep(min(ttl / 2, 5.0))
            now = time.monotonic()
            for ses in list(self._sessions.values()):
                if ses.stream is None and now - ses.last_used > ttl:
                    logger.info("http edge releasing idle session %s", ses.session_id)
                    self._close_session(ses, goodbye=True)

    # ------------------------------------------------------------------
    # Gateway frame plumbing (sink runs on gateway threads)
    # ------------------------------------------------------------------
    def _make_sink(self, ses: _EdgeSession) -> Callable[[Dict[str, Any]], None]:
        def sink(frame: Dict[str, Any]) -> None:
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            try:
                loop.call_soon_threadsafe(self._dispatch_frame, ses, frame)
            except RuntimeError:
                pass  # loop shut down between the check and the call
        return sink

    def _dispatch_frame(self, ses: _EdgeSession, frame: Dict[str, Any]) -> None:
        mtype = frame.get("type")
        if mtype in ("welcome", "auth_error"):
            waiter, ses.hello_waiter = ses.hello_waiter, None
            if waiter is not None and not waiter.done():
                waiter.set_result(frame)
            else:
                # A stream-resume handshake (no waiter) takes its reply
                # through the stream queue so the welcome stays ordered with
                # the replay train behind it (see _route_stream).
                self._stream_put(ses, frame)
        elif mtype in ("accepted", "busy"):
            waiter = ses.acks.pop(frame.get("client_task_id"), None)
            if waiter is not None and not waiter.done():
                waiter.set_result(frame)
        elif mtype == "cancel_reply":
            waiter = ses.cancels.pop(frame.get("client_task_id"), None)
            if waiter is not None and not waiter.done():
                waiter.set_result(frame)
        elif mtype == "result":
            # A duplicate submit of a finished task is answered with the
            # result frame itself; a pending ack waiter counts that as
            # acceptance (the stream/replay still carries the result).
            waiter = ses.acks.pop(frame.get("client_task_id"), None)
            if waiter is not None and not waiter.done():
                waiter.set_result({"type": "accepted",
                                   "client_task_id": frame.get("client_task_id")})
            ses.touch()
            self._stream_put(ses, frame)
        elif mtype == "error":
            cid = frame.get("client_task_id")
            waiter = ses.acks.pop(cid, None) if cid is not None else None
            if waiter is not None and not waiter.done():
                waiter.set_result(frame)
            else:
                logger.warning("gateway error on %s: %s", ses.identity, frame.get("reason"))

    def _stream_put(self, ses: _EdgeSession, item: Any) -> None:
        queue = ses.stream
        if queue is None:
            return  # no stream attached: the replay buffer is the record
        try:
            queue.put_nowait(item)
        except asyncio.QueueFull:
            # A reader this far behind is presumed stalled: drop the stream
            # (it resumes with Last-Event-ID) instead of buffering unboundedly.
            # Make room for the close sentinel so the serving coroutine stops
            # draining into the stalled socket instead of sitting on ~256
            # buffered events; the dropped event stays in the replay buffer.
            logger.warning("http edge dropping stalled stream for %s", ses.identity)
            ses.stream = None
            try:
                queue.get_nowait()
                queue.put_nowait(_STREAM_CLOSE)
            except (asyncio.QueueEmpty, asyncio.QueueFull):
                pass

    # ------------------------------------------------------------------
    # Session management (all on the loop thread)
    # ------------------------------------------------------------------
    async def _hello(self, ses: _EdgeSession, hello_frame: Dict[str, Any]) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        ses.hello_waiter = waiter
        self.gateway.post(ses.identity, hello_frame)
        try:
            return await asyncio.wait_for(waiter, timeout=self.request_timeout)
        except asyncio.TimeoutError:
            ses.hello_waiter = None
            raise _HttpError(503, "gateway handshake timed out")

    async def _open_session(self, tenant: str, token: Optional[str],
                            weight: Optional[int] = None) -> _EdgeSession:
        ses = _EdgeSession(make_uid("http"), tenant)
        self.gateway.attach_local(ses.identity, self._make_sink(ses))
        try:
            frame = await self._hello(ses, protocol.hello(tenant, token, weight=weight))
            if frame["type"] != "welcome":
                raise _HttpError(401, str(frame.get("reason", "authentication failed")))
        except BaseException:
            self.gateway.detach_local(ses.identity)
            raise
        ses.info = SessionInfo.from_json(frame)
        self._sessions[ses.info.session] = ses
        return ses

    async def _resume_session(self, tenant: str, token: Optional[str], session_id: str,
                              session_token: str, last_seq: int = 0) -> _EdgeSession:
        """Re-attach to a gateway session this edge doesn't hold (edge
        restart, or a TCP client migrating to HTTP). 410 when the gateway
        evicted it — the SDK's cue to start over."""
        ses = _EdgeSession(make_uid("http"), tenant)
        self.gateway.attach_local(ses.identity, self._make_sink(ses))
        try:
            frame = await self._hello(
                ses,
                protocol.hello(tenant, token, session=session_id,
                               session_token=session_token, last_seq=last_seq),
            )
            if frame["type"] != "welcome":
                reason = str(frame.get("reason", ""))
                if "unknown or expired" in reason:
                    status = 410
                elif "mismatch" in reason:
                    status = 403
                else:
                    status = 401
                raise _HttpError(status, reason or "authentication failed")
        except BaseException:
            self.gateway.detach_local(ses.identity)
            raise
        ses.info = SessionInfo.from_json(frame)
        self._sessions[ses.info.session] = ses
        return ses

    # ------------------------------------------------------------------
    # Auth / request helpers
    # ------------------------------------------------------------------
    def _authenticate(self, request: _Request) -> Tuple[str, Optional[str]]:
        tenant = request.headers.get("x-repro-tenant") or request.query.get("tenant")
        if not tenant:
            raise _HttpError(400, "missing X-Repro-Tenant header")
        token: Optional[str] = None
        auth = request.headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            token = auth[7:].strip()
        store = self.gateway.token_store
        if store is not None and not store.validate(protocol.token_scope(tenant), token):
            raise _HttpError(401, f"invalid or expired token for tenant {tenant!r}")
        return tenant, token

    def _session_credentials(self, request: _Request) -> Tuple[Optional[str], Optional[str]]:
        sid = request.headers.get("x-repro-session") or request.query.get("session")
        stoken = (request.headers.get("x-repro-session-token")
                  or request.query.get("session_token"))
        return sid, stoken

    async def _session_for(self, request: _Request, tenant: str, token: Optional[str],
                           sid: Optional[str], stoken: Optional[str],
                           auto_create: bool, last_seq: int = 0) -> Tuple[_EdgeSession, bool]:
        """Resolve the request's session; returns ``(session, created)``."""
        if sid is None:
            if not auto_create:
                raise _HttpError(400, "missing X-Repro-Session header")
            return await self._open_session(tenant, token), True
        ses = self._sessions.get(sid)
        if ses is not None:
            if ses.tenant != tenant or not ses.info or ses.info.session_token != stoken:
                raise _HttpError(403, "session credentials mismatch")
            ses.touch()
            return ses, False
        if stoken is None:
            raise _HttpError(403, "missing X-Repro-Session-Token header")
        ses = await self._resume_session(tenant, token, sid, stoken, last_seq=last_seq)
        return ses, False

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError, ValueError):
            return None
        if not line or line.strip() == b"":
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise _HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length")
        try:
            length = int(raw_length) if raw_length else 0
        except ValueError:
            raise _HttpError(400, f"malformed Content-Length {raw_length!r}")
        if length < 0:
            raise _HttpError(400, f"negative Content-Length {length}")
        if length > self.max_body:
            raise _HttpError(413, f"body of {length} bytes exceeds limit {self.max_body}")
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        query = {k: v[0] for k, v in parse_qs(parts.query).items()}
        return _Request(method.upper(), parts.path, query, headers, body)

    @staticmethod
    def _encode_response(status: int, body: bytes, content_type: str,
                         extra: Optional[Dict[str, str]] = None,
                         keep_alive: bool = True) -> bytes:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    async def _respond_json(self, writer: asyncio.StreamWriter, status: int, obj: Any,
                            extra: Optional[Dict[str, str]] = None,
                            keep_alive: bool = True) -> None:
        body = json.dumps(obj).encode("utf-8")
        writer.write(self._encode_response(status, body, "application/json",
                                           extra, keep_alive))
        await writer.drain()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while not self._stopping:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._respond_json(writer, exc.status, {"error": exc.reason},
                                             exc.headers, keep_alive=False)
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                try:
                    keep_alive = await self._dispatch_request(request, reader, writer)
                except _HttpError as exc:
                    await self._respond_json(writer, exc.status, {"error": exc.reason},
                                             exc.headers)
                    keep_alive = True
                except (ConnectionError, asyncio.CancelledError):
                    break
                except Exception:  # noqa: BLE001 - one request must not kill the server
                    logger.exception("http edge request failed")
                    await self._respond_json(writer, 500, {"error": "internal error"},
                                             keep_alive=False)
                    break
                if not keep_alive or request.headers.get("connection", "").lower() == "close":
                    break
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch_request(self, request: _Request, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> bool:
        method, path = request.method, request.path
        if path == "/v1/healthz":
            # Liveness + readiness in one probe: answering at all proves the
            # edge process is alive; the status code reflects whether any
            # shard can take work. 503 (zero live shards) tells a load
            # balancer to stop routing here; partial shard loss stays 200
            # ("degraded") because submissions still succeed on survivors.
            shards = self.gateway.shard_stats()
            alive = sum(1 for s in shards if s.get("alive"))
            store_lag_ms = self.gateway.store_lag_ms()
            if alive == len(shards):
                health = "ok"
            elif alive:
                health = "degraded"
            else:
                health = "unavailable"
            # A wedged SessionStore writer degrades readiness before anything
            # times out: accepted submits are not durable until it drains.
            if health == "ok" and store_lag_ms > self.gateway.store_degraded_ms:
                health = "degraded"
            await self._respond_json(writer, 200 if alive else 503, {
                "status": health,
                "sessions": len(self._sessions),
                "store_lag_ms": round(store_lag_ms, 3),
                "shards": shards,
            })
            return True
        if path == "/metrics" and method == "GET":
            # Prometheus scrape endpoint: unauthenticated (like healthz) and
            # rendered in the text exposition format scrapers expect.
            body = self.gateway.render_metrics().encode("utf-8")
            writer.write(self._encode_response(
                200, body, "text/plain; version=0.0.4; charset=utf-8"
            ))
            await writer.drain()
            return True
        if path == "/v1/alerts" and method == "GET":
            # Ops plane (unauthenticated, like /metrics): SLO burn alerts,
            # per-tenant windowed latency state, stragglers, sick workers.
            await self._respond_json(writer, 200, self.gateway.alerts_snapshot())
            return True
        if path == "/v1/stats" and method == "GET":
            # Cluster-wide ops counters for consoles (repro_top): every
            # tenant's admission state plus shard occupancy and store lag.
            await self._respond_json(writer, 200, self.gateway.ops_stats())
            return True
        if path == "/v1/session" and method == "POST":
            return await self._route_open_session(request, writer)
        if path.startswith("/v1/session/") and method == "DELETE":
            return await self._route_close_session(request, writer,
                                                   path[len("/v1/session/"):])
        if path == "/v1/tasks" and method == "POST":
            return await self._route_submit(request, writer)
        if path.startswith("/v1/tasks/") and path.endswith("/cancel") and method == "POST":
            task_id = path[len("/v1/tasks/"):-len("/cancel")]
            return await self._route_cancel(request, writer, task_id)
        if path.startswith("/v1/tasks/") and method == "GET":
            return await self._route_status(request, writer, path[len("/v1/tasks/"):])
        if path == "/v1/tenants/me/stats" and method == "GET":
            return await self._route_stats(request, writer)
        if path == "/v1/stream" and method == "GET":
            return await self._route_stream(request, writer)
        raise _HttpError(404 if path.startswith("/v1/") else 404,
                         f"no route for {method} {path}")

    async def _route_open_session(self, request: _Request,
                                  writer: asyncio.StreamWriter) -> bool:
        tenant, token = self._authenticate(request)
        body = request.json()
        session_id = body.get("session")
        if session_id:
            ses = await self._resume_session(
                tenant, token, str(session_id), str(body.get("session_token") or ""),
                last_seq=int(body.get("last_seq") or 0),
            )
        else:
            weight = body.get("weight")
            ses = await self._open_session(
                tenant, token, weight=int(weight) if weight is not None else None
            )
        await self._respond_json(writer, 201, ses.info.to_json())
        return True

    async def _route_close_session(self, request: _Request, writer: asyncio.StreamWriter,
                                   session_id: str) -> bool:
        tenant, _token = self._authenticate(request)
        ses = self._sessions.get(session_id)
        if ses is None:
            raise _HttpError(410, "unknown or expired session")
        _sid, stoken = self._session_credentials(request)
        if ses.tenant != tenant or not ses.info or ses.info.session_token != stoken:
            raise _HttpError(403, "session credentials mismatch")
        self._close_session(ses, goodbye=True)
        await self._respond_json(writer, 200, {"released": session_id})
        return True

    async def _route_submit(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        tenant, token = self._authenticate(request)
        sid, stoken = self._session_credentials(request)
        ses, created = await self._session_for(request, tenant, token, sid, stoken,
                                               auto_create=True)
        body = request.json()
        buffer = self._build_buffer(body)
        spec = dict(body.get("resource_spec") or {})
        if body.get("priority") is not None:
            spec["priority"] = int(body["priority"])
        requested = body.get("client_task_id")
        if requested is not None and not isinstance(requested, int):
            raise _HttpError(400, "client_task_id must be an integer")
        cid = ses.claim_cid(requested)
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        ses.acks[cid] = waiter
        ses.touch()
        self.gateway.post(ses.identity, protocol.submit(cid, buffer, spec or None))
        try:
            frame = await asyncio.wait_for(waiter, timeout=self.request_timeout)
        except asyncio.TimeoutError:
            ses.acks.pop(cid, None)
            raise _HttpError(503, "gateway did not acknowledge the submission")
        mtype = frame.get("type")
        if mtype == "accepted":
            accepted = TaskAccepted(
                task_id=make_task_id(ses.session_id, cid),
                client_task_id=cid,
                session=ses.session_id,
                session_token=ses.info.session_token if created else None,
                trace_id=frame.get("trace_id"),
            )
            await self._respond_json(writer, 202, accepted.to_json())
        elif mtype == "busy":
            payload = {
                "error": "busy",
                "in_flight": frame.get("in_flight"),
                "cap": frame.get("cap"),
                "retry_after_s": RETRY_AFTER_S,
                "client_task_id": cid,
                "session": ses.session_id,
            }
            if created:
                payload["session_token"] = ses.info.session_token
            await self._respond_json(writer, 429, payload,
                                     extra={"Retry-After": str(max(1, int(RETRY_AFTER_S)))})
        elif mtype == "error" and frame.get("code") == "shard_unavailable":
            # No live shard: the task was never admitted, so this is a
            # clean retry-later for the client (503 + Retry-After), not a
            # session problem (410) or a request problem (400).
            payload = {
                "error": "shard_unavailable",
                "shard": frame.get("shard"),
                "retry_after_s": RETRY_AFTER_S,
                "client_task_id": cid,
                "session": ses.session_id,
            }
            if created:
                payload["session_token"] = ses.info.session_token
            await self._respond_json(writer, 503, payload,
                                     extra={"Retry-After": str(max(1, int(RETRY_AFTER_S)))})
        else:
            raise _HttpError(400, str(frame.get("reason", "submission rejected")))
        return True

    def _build_buffer(self, body: Dict[str, Any]) -> bytes:
        payload_b64 = body.get("payload_b64")
        fn = body.get("fn")
        if (payload_b64 is None) == (fn is None):
            raise _HttpError(400, "exactly one of 'fn' or 'payload_b64' is required")
        if payload_b64 is not None:
            try:
                return base64.b64decode(payload_b64, validate=True)
            except Exception as exc:  # noqa: BLE001
                raise _HttpError(400, f"payload_b64 is not valid base64: {exc}")
        func = self._resolve_callable(str(fn))
        args = body.get("args") or []
        kwargs = body.get("kwargs") or {}
        if not isinstance(args, list) or not isinstance(kwargs, dict):
            raise _HttpError(400, "'args' must be a list and 'kwargs' an object")
        return pack_apply_message(func, tuple(args), kwargs)

    def _resolve_callable(self, name: str) -> Callable:
        func = self.registry.get(name)
        if func is not None:
            return func
        if not self.allow_dotted_paths:
            raise _HttpError(404, f"unknown function {name!r} (not registered)")
        modname, sep, qual = name.partition(":")
        if not sep:
            modname, _, qual = name.rpartition(".")
        if not modname or not qual:
            raise _HttpError(400, f"cannot parse callable path {name!r}")
        try:
            obj: Any = importlib.import_module(modname)
            for part in qual.split("."):
                obj = getattr(obj, part)
        except (ImportError, AttributeError) as exc:
            raise _HttpError(404, f"cannot import {name!r}: {exc}")
        if not callable(obj):
            raise _HttpError(400, f"{name!r} is not callable")
        return obj

    async def _route_status(self, request: _Request, writer: asyncio.StreamWriter,
                            task_id: str) -> bool:
        tenant, token = self._authenticate(request)
        try:
            session_id, cid = split_task_id(task_id)
        except ValueError as exc:
            raise _HttpError(400, str(exc))
        _sid, stoken = self._session_credentials(request)
        ses, _ = await self._session_for(request, tenant, token, session_id, stoken,
                                         auto_create=False)
        state = self.gateway.task_state(ses.session_id, cid)
        if state is None:
            raise _HttpError(404, f"unknown task {task_id!r}")
        status, frame = state
        if status != "done":
            await self._respond_json(writer, 200, {"task_id": task_id, "status": status})
        elif frame is None:
            await self._respond_json(
                writer, 200,
                {"task_id": task_id, "status": "done", "result_expired": True},
            )
        else:
            await self._respond_json(
                writer, 200, result_frame_to_status(ses.session_id, frame).to_json()
            )
        return True

    async def _route_cancel(self, request: _Request, writer: asyncio.StreamWriter,
                            task_id: str) -> bool:
        tenant, token = self._authenticate(request)
        try:
            session_id, cid = split_task_id(task_id)
        except ValueError as exc:
            raise _HttpError(400, str(exc))
        _sid, stoken = self._session_credentials(request)
        ses, _ = await self._session_for(request, tenant, token, session_id, stoken,
                                         auto_create=False)
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        ses.cancels[cid] = waiter
        ses.touch()
        self.gateway.post(ses.identity, protocol.cancel(cid))
        try:
            frame = await asyncio.wait_for(waiter, timeout=self.request_timeout)
        except asyncio.TimeoutError:
            ses.cancels.pop(cid, None)
            raise _HttpError(503, "gateway did not answer the cancel request")
        status = str(frame.get("status"))
        http_status = 404 if status == "unknown" else 200
        await self._respond_json(writer, http_status,
                                 {"task_id": task_id, "status": status})
        return True

    async def _route_stats(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        tenant, _token = self._authenticate(request)
        counts = self.gateway.stats().get(tenant, {})
        stats = TenantStats.from_json({"tenant": tenant, **counts})
        await self._respond_json(writer, 200, stats.to_json())
        return True

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    async def _drain_bounded(self, writer: asyncio.StreamWriter) -> None:
        """``drain()`` with a deadline: a reader that stops consuming must
        not pin the serving coroutine in a flow-control wait forever."""
        try:
            await asyncio.wait_for(writer.drain(), timeout=self.request_timeout)
        except asyncio.TimeoutError:
            raise ConnectionError("SSE client stopped reading; dropping stream")

    async def _route_stream(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        tenant, token = self._authenticate(request)
        sid, stoken = self._session_credentials(request)
        if sid is None:
            raise _HttpError(400, "streaming requires a session (X-Repro-Session)")
        raw_cursor = (request.headers.get("last-event-id")
                      or request.query.get("last_event_id") or "0")
        try:
            last_seq = int(raw_cursor)
        except ValueError:
            raise _HttpError(400, f"Last-Event-ID must be an integer, got {raw_cursor!r}")
        ses, _ = await self._session_for(request, tenant, token, sid, stoken,
                                         auto_create=False, last_seq=last_seq)
        # Supersede any previous stream, then replay the unseen suffix by
        # re-running the gateway's resume handshake with the client's cursor.
        if ses.stream is not None:
            self._stream_put(ses, _STREAM_CLOSE)
        ses.stream = asyncio.Queue(maxsize=STREAM_QUEUE_LIMIT)
        queue = ses.stream
        # The handshake reply arrives *through the queue* (no hello_waiter —
        # see _dispatch_frame), so welcome-then-replay ordering here is
        # exactly the gateway sender thread's ordering. A result frame
        # already queued ahead of the welcome raced in before the gateway
        # processed the hello; it is therefore covered by the replay train
        # and must be discarded — written as a live event it would advance
        # the duplicate filter past the very replay that carries its
        # predecessors.
        self.gateway.post(
            ses.identity,
            protocol.hello(tenant, token, session=ses.session_id,
                           session_token=ses.info.session_token, last_seq=last_seq),
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.request_timeout
        superseded = False
        frame: Optional[Dict[str, Any]] = None
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                if ses.stream is queue:
                    ses.stream = None
                raise _HttpError(503, "gateway handshake timed out")
            try:
                item = await asyncio.wait_for(queue.get(), timeout=remaining)
            except asyncio.TimeoutError:
                continue
            if item is _STREAM_CLOSE:
                superseded = True  # a newer stream took over mid-handshake
                break
            if isinstance(item, dict) and item.get("type") in ("welcome", "auth_error"):
                frame = item
                break
            # else: a pre-welcome racer — drop it, the replay re-delivers it
        if not superseded and frame["type"] != "welcome":
            ses.stream = None
            raise _HttpError(410, str(frame.get("reason", "session lost")))

        headers = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "X-Accel-Buffering: no\r\n\r\n"
        )
        written_seq = last_seq
        try:
            writer.write(headers.encode("latin-1"))
            await self._drain_bounded(writer)
            if superseded:
                writer.write(b"event: done\ndata: {\"reason\": \"superseded\"}\n\n")
                await self._drain_bounded(writer)
                return False
            while True:
                try:
                    item = await asyncio.wait_for(queue.get(), timeout=self.sse_keepalive_s)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await self._drain_bounded(writer)
                    continue
                if item is _STREAM_CLOSE:
                    writer.write(b"event: done\ndata: {\"reason\": \"superseded\"}\n\n")
                    await self._drain_bounded(writer)
                    break
                seq = int(item.get("seq") or 0)
                if seq <= written_seq:
                    continue  # replay overlap: the client already saw this
                written_seq = seq
                status = result_frame_to_status(ses.session_id, item)
                event = "result" if status.success else "error"
                data = json.dumps(status.to_json())
                writer.write(f"id: {seq}\nevent: {event}\ndata: {data}\n\n".encode("utf-8"))
                await self._drain_bounded(writer)
                ses.touch()
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            if ses.stream is queue:
                ses.stream = None
        return False  # the SSE response consumed the connection
