"""Wire protocol of the workflow gateway service.

Gateway traffic rides the same length-prefixed pickle framing as every other
part of the system (:mod:`repro.comms.protocol`); this module pins down the
*message shapes* exchanged on top of it, as plain dict constructors — the
same idiom the HTEX interchange uses — so every message is trivially
picklable and easy to assert on in tests.

Session handshake::

    client                                  gateway
      | -- hello(tenant, token[, session]) --> |   authenticate against the
      | <-- welcome(session, session_token,    |   TokenStore scope
      |            resumed, max_inflight) ---- |   ``gateway/<tenant>``
      | <-- result(seq > last_seq) … (replay) -|   (resume only)

Steady state::

      | -- submit(client_task_id, buffer) ---> |   admission check
      | <-- accepted(client_task_id) --------- |   … or busy(...) backpressure
      | <-- result(seq, client_task_id, ...) - |   as tasks complete
      | -- stats(req_id) --------------------> |
      | <-- stats_reply(req_id, tenants) ----- |

Every result carries a per-session monotonically increasing ``seq``; a
resuming client reports the highest ``seq`` it saw and the gateway replays
everything newer from the session's replay buffer, which is how results that
completed during a disconnect are recovered.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: TokenStore scope prefix the gateway authenticates tenants against.
TOKEN_SCOPE_PREFIX = "gateway/"


def token_scope(tenant: str) -> str:
    """The TokenStore resource name guarding ``tenant``'s registrations."""
    return TOKEN_SCOPE_PREFIX + tenant


# ---------------------------------------------------------------------------
# Client -> gateway
# ---------------------------------------------------------------------------

def hello(
    tenant: str,
    token: Optional[str] = None,
    session: Optional[str] = None,
    session_token: Optional[str] = None,
    last_seq: int = 0,
    weight: Optional[int] = None,
) -> Dict[str, Any]:
    """Open (or resume, when ``session`` is given) a tenant session."""
    message: Dict[str, Any] = {"type": "hello", "tenant": tenant, "token": token}
    if session is not None:
        message["session"] = session
        message["session_token"] = session_token
        message["last_seq"] = last_seq
    if weight is not None:
        message["weight"] = weight
    return message


def submit(client_task_id: int, buffer: bytes, resource_spec: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """One task submission: a ``pack_apply_message`` buffer plus its spec."""
    message: Dict[str, Any] = {"type": "submit", "client_task_id": client_task_id, "buffer": buffer}
    if resource_spec:
        message["resource_spec"] = resource_spec
    return message


def cancel(client_task_id: int) -> Dict[str, Any]:
    """Ask the gateway to cancel a submitted task.

    Only tasks still waiting in the fair-share queue can be cancelled; a task
    already dispatched into the kernel runs to completion (the reply says
    ``running``), and a finished task replies ``done``.
    """
    return {"type": "cancel", "client_task_id": client_task_id}


def stats(req_id: int = 0) -> Dict[str, Any]:
    """Admin request for per-tenant queued/running/completed counts."""
    return {"type": "stats", "req_id": req_id}


def metrics(req_id: int = 0) -> Dict[str, Any]:
    """Admin request for the live metrics plane (Prometheus text format)."""
    return {"type": "metrics", "req_id": req_id}


def alerts(req_id: int = 0) -> Dict[str, Any]:
    """Admin request for the live ops plane: SLO burn alerts, per-tenant
    windowed latency state, and the straggler/sick-worker report."""
    return {"type": "alerts", "req_id": req_id}


def goodbye() -> Dict[str, Any]:
    """Deliberate disconnect: the session is released immediately (no TTL)."""
    return {"type": "goodbye"}


# ---------------------------------------------------------------------------
# Gateway -> client
# ---------------------------------------------------------------------------

def welcome(
    session: str,
    session_token: str,
    resumed: bool,
    max_inflight: int,
    weight: int,
    shard: Optional[int] = None,
) -> Dict[str, Any]:
    """Session grant. ``shard`` is the tenant's home-shard index
    (informational: placement may still spill to other shards under load)."""
    message = {
        "type": "welcome",
        "session": session,
        "session_token": session_token,
        "resumed": resumed,
        "max_inflight": max_inflight,
        "weight": weight,
    }
    if shard is not None:
        message["shard"] = shard
    return message


def auth_error(reason: str) -> Dict[str, Any]:
    """Handshake rejection (bad token, unknown/expired session)."""
    return {"type": "auth_error", "reason": reason}


def accepted(client_task_id: int, trace_id: Optional[str] = None) -> Dict[str, Any]:
    """Submit acknowledgement: the task is admitted (and, with a durable store, its write-ahead row is committed).

    ``trace_id`` is the server-assigned end-to-end trace identifier (present
    only when tracing is enabled), usable to look up the task's span
    waterfall in the monitoring store after the run.
    """
    message: Dict[str, Any] = {"type": "accepted", "client_task_id": client_task_id}
    if trace_id is not None:
        message["trace_id"] = trace_id
    return message


def busy(client_task_id: int, in_flight: int, cap: int) -> Dict[str, Any]:
    """Backpressure: the tenant is at its in-flight cap; resubmit later."""
    return {"type": "busy", "client_task_id": client_task_id, "in_flight": in_flight, "cap": cap}


def result(seq: int, client_task_id: int, success: bool, buffer: bytes,
           trace_id: Optional[str] = None) -> Dict[str, Any]:
    """One completed task: ``buffer`` deserializes to the value or exception.

    ``trace_id`` (present only when the task was traced) identifies the
    task's span waterfall in the monitoring store.
    """
    message: Dict[str, Any] = {
        "type": "result",
        "seq": seq,
        "client_task_id": client_task_id,
        "success": success,
        "buffer": buffer,
    }
    if trace_id is not None:
        message["trace_id"] = trace_id
    return message


def cancel_reply(client_task_id: int, status: str) -> Dict[str, Any]:
    """Outcome of a cancel request.

    ``status`` is ``cancelled`` (removed from the queue; a failure result
    carrying :class:`~repro.errors.TaskCancelledError` follows), ``running``
    (already dispatched, not cancellable), ``done`` (already finished), or
    ``unknown`` (no such task in this session).
    """
    return {"type": "cancel_reply", "client_task_id": client_task_id, "status": status}


def stats_reply(req_id: int, tenants: Dict[str, Dict[str, int]],
                shards: Optional[list] = None) -> Dict[str, Any]:
    """Admin counters: per-tenant admission state, plus (when the gateway
    runs more than zero shards — always, in practice) per-shard occupancy."""
    message: Dict[str, Any] = {"type": "stats_reply", "req_id": req_id, "tenants": tenants}
    if shards is not None:
        message["shards"] = shards
    return message


def metrics_reply(req_id: int, text: str) -> Dict[str, Any]:
    """The rendered metrics plane: one Prometheus text-format document."""
    return {"type": "metrics_reply", "req_id": req_id, "text": text}


def alerts_reply(req_id: int, payload: Dict[str, Any]) -> Dict[str, Any]:
    """The ops-plane snapshot: the same JSON-ready document
    ``GET /v1/alerts`` serves (``alerts`` / ``slo`` / ``stragglers`` /
    ``workers`` keys)."""
    return {"type": "alerts_reply", "req_id": req_id, "payload": payload}


def error(reason: str, client_task_id: Optional[int] = None,
          code: Optional[str] = None, shard: Optional[int] = None) -> Dict[str, Any]:
    """A request the gateway could not act on (e.g. an undecodable buffer).

    ``code`` is a machine-readable discriminator for errors clients should
    branch on; ``"shard_unavailable"`` (with ``shard`` naming the tenant's
    home shard) means no live shard could take the task — retry later,
    the submission was never admitted.
    """
    message: Dict[str, Any] = {"type": "error", "reason": reason}
    if client_task_id is not None:
        message["client_task_id"] = client_task_id
    if code is not None:
        message["code"] = code
    if shard is not None:
        message["shard"] = shard
    return message
