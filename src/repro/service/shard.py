"""Sharding the gateway across N DataFlowKernels.

One :class:`~repro.service.gateway.WorkflowGateway` process can front more
concurrency than one DFK pipeline comfortably absorbs: the kernel's
dispatch/completion path is a per-kernel serialization point. This module
splits the execution fabric into **shards** — each shard wraps one DFK plus
its own fair-share queue, dispatch window, pump thread, and completion
hook — while the gateway keeps a single protocol/session brain in front of
all of them.

Placement is the :class:`ShardRouter`'s job, reusing the two policy shapes
of :class:`~repro.scheduling.router.ExecutorRouter` at the coarser grain:

* **consistent hashing** on the tenant name (a hash ring with virtual
  nodes) gives every tenant a sticky *home shard*, so one tenant's tasks
  land on one kernel — warm caches, batched dispatch, and per-kernel
  fair-share state stay coherent without any cross-shard coordination;
* **load-aware spillover** breaks stickiness exactly when it would hurt:
  when the home shard's backlog exceeds ``spillover`` × the least-loaded
  live shard's (hysteresis against flapping), or the home shard is dead,
  the task goes to the least-loaded live shard instead (random tie-break,
  as in :meth:`ExecutorRouter._pick_least_loaded`).

Shard death is survivable: the gateway detaches the dead shard's completion
hook first (so nothing it still completes can be delivered — the dedup
table would otherwise see double results) and re-routes its queued *and*
in-flight tasks through this router onto the survivors.
"""

from __future__ import annotations

import bisect
import hashlib
import random
import threading
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.scheduling.queues import WeightedFairShareQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dflow import DataFlowKernel


def _ring_hash(key: str) -> int:
    """Stable 64-bit placement hash (Python's ``hash()`` is salted per run)."""
    return int.from_bytes(hashlib.md5(key.encode()).digest()[:8], "big")


class GatewayShard:
    """One DFK behind the gateway: queue + window + accounting.

    Owned by the gateway; all mutable fields are guarded by the gateway's
    lock (the shard's ``cv`` is a Condition on that same lock, so the
    per-shard pump thread can sleep on *its* shard without waking the
    others).
    """

    def __init__(self, index: int, dfk: "DataFlowKernel", window: int,
                 default_weight: int):
        self.index = index
        self.dfk = dfk
        #: Dispatch window: how many of this shard's tasks may sit inside
        #: its DFK at once (queued-beyond stays in the fair-share queue).
        self.window = window
        self.queue = WeightedFairShareQueue(default_weight=default_weight)
        #: Tasks dispatched into the DFK and not yet final.
        self.inflight = 0
        self.dispatched_total = 0
        self.completed_total = 0
        self.alive = True
        #: Set by the gateway: Condition on the gateway lock.
        self.cv: Optional[threading.Condition] = None
        #: The completion-hook closure registered with this shard's DFK
        #: (kept so kill/stop can detach exactly the right hook).
        self.hook: Any = None

    def load(self) -> int:
        """Backlog metric the router compares shards by."""
        return self.inflight + self.queue.qsize()

    def stats(self) -> Dict[str, Any]:
        """Snapshot of this shard's counters for ``stats_reply``/healthz.

        Includes a ``faults`` row aggregating the execution-layer fault
        counters (managers lost, workers lost, tasks redispatched, tasks
        poisoned) across every interchange-backed executor behind this
        shard's DFK, so an operator polling gateway ``stats`` sees worker
        crashes without shelling into the cluster, and a ``metrics`` row
        with the flat per-shard summary of the kernel's live metrics
        registry (empty when ``Config(metrics_enabled=False)``).
        """
        faults: Dict[str, int] = {
            "managers_lost": 0,
            "workers_lost": 0,
            "tasks_redispatched": 0,
            "tasks_poisoned": 0,
        }
        for executor in getattr(self.dfk, "executors", {}).values():
            interchange = getattr(executor, "interchange", None)
            if interchange is None:
                continue
            try:
                for key, value in interchange.fault_stats().items():
                    if key in faults:
                        faults[key] += int(value)
            except Exception:  # noqa: BLE001 - stats must not kill the gateway
                continue
        registry = getattr(self.dfk, "metrics", None)
        try:
            metrics = registry.summary() if registry is not None else {}
        except Exception:  # noqa: BLE001 - stats must not kill the gateway
            metrics = {}
        return {
            "alive": int(self.alive),
            "inflight": self.inflight,
            "queued": self.queue.qsize(),
            "window": self.window,
            "dispatched": self.dispatched_total,
            "completed": self.completed_total,
            "faults": faults,  # type: ignore[dict-item]
            "metrics": metrics,  # type: ignore[dict-item]
        }


class ShardRouter:
    """Consistent-hash tenant placement with load-aware spillover.

    Thread-safety: :meth:`route` only reads shard counters (racy reads are
    fine — placement is a heuristic), so callers may invoke it with or
    without the gateway lock held.
    """

    def __init__(self, shards: Sequence[GatewayShard], vnodes: int = 64,
                 spillover: float = 2.0,
                 rng: Optional[random.Random] = None):
        if not shards:
            raise ValueError("ShardRouter needs at least one shard")
        self.shards = list(shards)
        self.vnodes = max(1, vnodes)
        #: Home-shard overload tolerance: spill only when home backlog
        #: exceeds ``spillover * (min live backlog + 1)``. The +1 keeps an
        #: idle fleet sticky (0 > 2*0 would spill on the first task).
        self.spillover = spillover
        self._rng = rng or random.Random()
        ring: List[tuple] = []
        for shard in self.shards:
            for v in range(self.vnodes):
                ring.append((_ring_hash(f"shard-{shard.index}/{v}"), shard.index))
        ring.sort()
        self._ring_keys = [key for key, _ in ring]
        self._ring_shards = [idx for _, idx in ring]

    def home(self, tenant: str) -> GatewayShard:
        """The tenant's hash-ring home shard, dead or alive."""
        point = _ring_hash(tenant)
        slot = bisect.bisect_right(self._ring_keys, point) % len(self._ring_keys)
        return self.shards[self._ring_shards[slot]]

    def route(self, tenant: str) -> Optional[GatewayShard]:
        """Pick the shard for one task of ``tenant``; ``None`` if none live.

        Sticky to :meth:`home` while it is alive and not overloaded
        relative to the least-loaded live shard; otherwise least-loaded
        live shard with a random tie-break.
        """
        live = [s for s in self.shards if s.alive]
        if not live:
            return None
        home = self.home(tenant)
        if len(live) == 1:
            return live[0] if home.alive else live[0]
        floor = min(s.load() for s in live)
        if home.alive and home.load() <= self.spillover * (floor + 1):
            return home
        best = [s for s in live if s.load() == floor]
        return self._rng.choice(best)

    def live_count(self) -> int:
        """How many shards are currently alive."""
        return sum(1 for s in self.shards if s.alive)
