"""Write-ahead SQLite persistence for gateway sessions.

The gateway's crash-survival contract is delivery-centric: **a result a
client has seen is durable, and a submit the gateway has accepted is
re-executed if its result was lost**. This module supplies the persistence
half of that contract as a single-file SQLite database in WAL mode:

* ``sessions`` — one row per live session (id, tenant, secret, last durable
  result sequence number). Loaded wholesale at gateway start so a restart
  *resumes* every session instead of answering resumes with auth errors.
* ``tasks`` — the write-ahead log of accepted submissions: the raw
  ``pack_apply_message`` buffer plus its resource spec. A row exists from
  the moment a submit is admitted until its result commits; whatever rows
  survive a crash are exactly the tasks that must run (again).
* ``results`` — the durable replay buffer: completed-result frames keyed by
  ``(session, seq)``, trimmed to the gateway's ``replay_limit`` as new
  results land. Recovery feeds these straight back through the same
  session-replay machinery the SSE ``Last-Event-ID`` path uses.

Threading model — **one writer thread**, group commit:

Every mutator enqueues an operation and returns immediately. The writer
thread drains the queue, applies the batch inside one transaction, commits
(one fsync for the whole batch — the ``service_store_flush_ms`` linger
bounds how long a batch may accumulate), and only then fires the
operations' ``on_durable`` callbacks, in enqueue order. The gateway hangs
client-visible acknowledgements (``accepted`` frames, result delivery) off
those callbacks, which is what makes the log *write-ahead*: nothing is
promised to a client before it is on disk.

``sqlite3`` serializes access per connection anyway; funnelling all writes
through one thread additionally gives deterministic op ordering (a delete
enqueued after an append always lands after it) and lets unrelated
sessions share one fsync.
"""

from __future__ import annotations

import logging
import os
import queue
import sqlite3
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

logger = logging.getLogger(__name__)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sessions (
    session_id    TEXT PRIMARY KEY,
    tenant        TEXT NOT NULL,
    session_token TEXT NOT NULL,
    seq           INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS tasks (
    session_id     TEXT NOT NULL,
    client_task_id INTEGER NOT NULL,
    buffer         BLOB NOT NULL,
    spec           BLOB,
    PRIMARY KEY (session_id, client_task_id)
);
CREATE TABLE IF NOT EXISTS results (
    session_id     TEXT NOT NULL,
    seq            INTEGER NOT NULL,
    client_task_id INTEGER NOT NULL,
    success        INTEGER NOT NULL,
    buffer         BLOB NOT NULL,
    PRIMARY KEY (session_id, seq)
);
"""

#: One queued mutation: (sql statements as (stmt, params) pairs, callback).
_Op = Tuple[List[Tuple[str, Tuple[Any, ...]]], Optional[Callable[[], None]]]


class SessionRecord:
    """Everything :meth:`SessionStore.load` recovers for one session."""

    __slots__ = ("session_id", "tenant", "session_token", "seq", "results", "tasks")

    def __init__(self, session_id: str, tenant: str, session_token: str, seq: int):
        self.session_id = session_id
        self.tenant = tenant
        self.session_token = session_token
        #: Highest durably committed result sequence number.
        self.seq = seq
        #: ``(seq, client_task_id, success, buffer)`` rows, seq-ascending —
        #: the surviving replay buffer.
        self.results: List[Tuple[int, int, bool, bytes]] = []
        #: ``client_task_id -> (buffer, spec)`` — accepted submits whose
        #: results never committed; they must be re-executed.
        self.tasks: Dict[int, Tuple[bytes, Optional[bytes]]] = {}


class SessionStore:
    """Durable session/replay/task log under a gateway (see module docs).

    Thread-safe: every mutator may be called from any thread; work is
    enqueued to the single writer thread. Callbacks fire on the writer
    thread after the batch containing their op has committed — keep them
    short and non-blocking (the gateway enqueues frames, nothing more).
    """

    def __init__(self, path: str, flush_ms: float = 2.0):
        self.path = path
        self.flush_ms = flush_ms
        self._ops: "queue.Queue[Optional[_Op]]" = queue.Queue()
        #: Enqueue times (monotonic) of ops not yet committed, oldest first:
        #: appended by :meth:`_enqueue`, popped by the writer as it consumes
        #: ops. The head's age is the writer lag healthz reports — a wedged
        #: or fsync-bound writer shows up here before anything times out.
        self._pending_t: Deque[float] = deque()
        self._stop = threading.Event()
        self._abandoned = False
        self._thread: Optional[threading.Thread] = None
        self._started = False
        directory = os.path.dirname(os.path.abspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Create the schema (and run SQLite's WAL crash recovery, which
        # discards any torn tail left by a previous kill -9) before the
        # gateway calls load().
        with self._open() as conn:
            conn.executescript(_SCHEMA)
            conn.commit()

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0, check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        # NORMAL + WAL: fsync on checkpoint, not on every commit — the
        # group-commit batching above this already bounds loss to the last
        # unflushed batch, which is exactly the un-acknowledged window.
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SessionStore":
        """Launch the writer thread (idempotent)."""
        if self._started:
            return self
        self._started = True
        self._thread = threading.Thread(
            target=self._writer_loop, name="session-store", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Flush every queued op, then stop the writer."""
        if not self._started:
            return
        self._stop.set()
        self._ops.put(None)  # wake the writer
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._started = False

    def abandon(self) -> None:
        """Stop *without* flushing queued ops — the kill -9 test double.

        Whatever the writer already committed survives; everything still in
        the queue is lost, exactly like power loss between group commits.
        """
        self._abandoned = True
        self._stop.set()
        self._ops.put(None)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._started = False

    # ------------------------------------------------------------------
    # Mutators (any thread; applied by the writer in enqueue order)
    # ------------------------------------------------------------------
    def _enqueue(self, op: _Op) -> None:
        """Queue one op, stamping its enqueue time for lag accounting."""
        self._pending_t.append(time.monotonic())
        self._ops.put(op)

    def lag_ms(self) -> float:
        """Age (ms) of the oldest op not yet committed; 0.0 when caught up.

        The writer-health readiness signal: group commit keeps this near
        ``flush_ms`` under load, so sustained growth means the writer is
        wedged or the disk cannot keep up. Safe from any thread.
        """
        try:
            oldest = self._pending_t[0]
        except IndexError:
            return 0.0
        return max(0.0, (time.monotonic() - oldest) * 1000.0)

    def save_session(self, session_id: str, tenant: str, session_token: str,
                     on_durable: Optional[Callable[[], None]] = None) -> None:
        """Persist a (new or resumed) session's identity and secret."""
        self._enqueue(([
            ("INSERT OR REPLACE INTO sessions (session_id, tenant, session_token, seq) "
             "VALUES (?, ?, ?, COALESCE((SELECT seq FROM sessions WHERE session_id = ?), 0))",
             (session_id, tenant, session_token, session_id)),
        ], on_durable))

    def delete_session(self, session_id: str) -> None:
        """Forget a session and everything it owns (eviction/goodbye)."""
        self._enqueue(([
            ("DELETE FROM sessions WHERE session_id = ?", (session_id,)),
            ("DELETE FROM tasks WHERE session_id = ?", (session_id,)),
            ("DELETE FROM results WHERE session_id = ?", (session_id,)),
        ], None))

    def append_task(self, session_id: str, client_task_id: int, buffer: bytes,
                    spec: Optional[bytes],
                    on_durable: Optional[Callable[[], None]] = None) -> None:
        """Write-ahead one accepted submit; ack the client from the callback."""
        self._enqueue(([
            ("INSERT OR REPLACE INTO tasks (session_id, client_task_id, buffer, spec) "
             "VALUES (?, ?, ?, ?)", (session_id, client_task_id, buffer, spec)),
        ], on_durable))

    def append_result(self, session_id: str, seq: int, client_task_id: int,
                      success: bool, buffer: bytes, replay_limit: int,
                      on_durable: Optional[Callable[[], None]] = None) -> None:
        """Commit one result frame; deliver to the client from the callback.

        Atomically retires the task's write-ahead row (it no longer needs
        re-execution), advances the session's durable seq, and trims replay
        rows older than ``replay_limit`` — so the on-disk state is always a
        consistent snapshot of the in-memory session.
        """
        self._enqueue(([
            ("INSERT OR REPLACE INTO results (session_id, seq, client_task_id, success, buffer) "
             "VALUES (?, ?, ?, ?, ?)", (session_id, seq, client_task_id, int(success), buffer)),
            ("DELETE FROM tasks WHERE session_id = ? AND client_task_id = ?",
             (session_id, client_task_id)),
            ("UPDATE sessions SET seq = ? WHERE session_id = ?", (seq, session_id)),
            ("DELETE FROM results WHERE session_id = ? AND seq <= ?",
             (session_id, seq - replay_limit)),
        ], on_durable))

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until every op enqueued before this call has committed."""
        fence = threading.Event()
        self._enqueue(([], fence.set))
        return fence.wait(timeout)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, SessionRecord]:
        """Read every surviving session (call before :meth:`start`)."""
        with self._open() as conn:
            records: Dict[str, SessionRecord] = {}
            for sid, tenant, token, seq in conn.execute(
                "SELECT session_id, tenant, session_token, seq FROM sessions"
            ):
                records[sid] = SessionRecord(sid, tenant, token, int(seq))
            for sid, seq, cid, success, buffer in conn.execute(
                "SELECT session_id, seq, client_task_id, success, buffer "
                "FROM results ORDER BY session_id, seq"
            ):
                record = records.get(sid)
                if record is not None:
                    record.results.append((int(seq), int(cid), bool(success), buffer))
            for sid, cid, buffer, spec in conn.execute(
                "SELECT session_id, client_task_id, buffer, spec FROM tasks"
            ):
                record = records.get(sid)
                if record is not None:
                    record.tasks[int(cid)] = (buffer, spec)
            return records

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        conn = self._open()
        try:
            while True:
                try:
                    first = self._ops.get(timeout=0.1)
                except queue.Empty:
                    if self._stop.is_set():
                        return
                    continue
                if self._abandoned:
                    return  # queued work dies with us (kill -9 semantics)
                batch: List[_Op] = []
                if first is not None:
                    batch.append(first)
                # Group commit: linger briefly so concurrent mutators share
                # one transaction/fsync, then drain whatever else arrived.
                deadline = (self.flush_ms / 1000.0) if not self._stop.is_set() else 0.0
                while len(batch) < 512:
                    try:
                        nxt = self._ops.get(timeout=deadline)
                    except queue.Empty:
                        break
                    deadline = 0.0
                    if nxt is None:
                        continue
                    if self._abandoned:
                        return
                    batch.append(nxt)
                if batch:
                    self._commit(conn, batch)
                if self._stop.is_set() and self._ops.empty():
                    return
        finally:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def _consume_pending(self, n: int) -> None:
        """Advance the lag clock for ``n`` consumed ops (commit or drop)."""
        for _ in range(n):
            try:
                self._pending_t.popleft()
            except IndexError:
                break

    def _commit(self, conn: sqlite3.Connection, batch: List[_Op]) -> None:
        try:
            for statements, _cb in batch:
                for stmt, params in statements:
                    conn.execute(stmt, params)
            conn.commit()
        except sqlite3.Error:
            logger.exception("session store commit failed (%d ops dropped)", len(batch))
            try:
                conn.rollback()
            except sqlite3.Error:
                pass
            self._consume_pending(len(batch))
            return
        # Retire the batch's lag entries before the durable callbacks run,
        # so anyone woken by flush() observes lag_ms() already caught up.
        self._consume_pending(len(batch))
        for _statements, callback in batch:
            if callback is not None:
                try:
                    callback()
                except Exception:  # noqa: BLE001 - one bad callback must not stop the drain
                    logger.exception("session store durable callback failed")
