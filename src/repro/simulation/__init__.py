"""Cluster-scale performance models.

The paper's evaluation runs on Midway (hundreds of cores) and Blue Waters
(up to 8192 nodes / 262 144 workers). Those scales cannot be reached on a
laptop, so the scaling and capacity experiments (Fig. 4, Table 2) are
regenerated from analytic performance models of each framework, calibrated
against (a) the architectural constants reported in the paper (per-task
latency, maximum workers, peak throughput) and (b) the real measurements this
package's executors produce at laptop scale.

The models are deliberately simple — a pipelined bound of the form
``T = startup + max(dispatch, execute)`` with per-framework overheads and
scale limits — because the paper's conclusions rest on the *shape* of the
curves (which framework degrades first, where the crossovers are), not on
absolute milliseconds.
"""

from repro.simulation.models import FrameworkModel, FRAMEWORK_MODELS, get_model
from repro.simulation.scaling import strong_scaling_time, weak_scaling_time, scaling_series
from repro.simulation.latency import latency_samples, latency_summary
from repro.simulation.throughput import max_throughput, throughput_series
from repro.simulation.limits import capacity_table
from repro.simulation.elasticity import ElasticitySimulation, four_stage_workflow

__all__ = [
    "FrameworkModel",
    "FRAMEWORK_MODELS",
    "get_model",
    "strong_scaling_time",
    "weak_scaling_time",
    "scaling_series",
    "latency_samples",
    "latency_summary",
    "max_throughput",
    "throughput_series",
    "capacity_table",
    "ElasticitySimulation",
    "four_stage_workflow",
]
