"""Elasticity simulation (paper §5.4, Figures 5 and 6).

The paper's elasticity study runs a four-stage workflow — two wide stages of
twenty 100-second tasks separated by single 50-second reduce tasks — with and
without elasticity, and reports worker utilization (ratio of task wall-clock
to worker wall-clock) and makespan. The measured result: 68.15 % utilization
and 301 s makespan without elasticity versus 84.28 % and 331 s with it.

This module reproduces the experiment with a small discrete-time simulation
of blocks, workers, queue delays, and the block-level strategy, so the full
paper-scale workflow (which takes ~5 real minutes) can be regenerated in
milliseconds; the benchmark additionally runs a scaled-down version on the
real HTEX + LocalProvider + Strategy stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def four_stage_workflow(
    width: int = 20,
    wide_task_s: float = 100.0,
    reduce_task_s: float = 50.0,
) -> List[List[float]]:
    """The Fig. 5 workflow: wide → reduce → wide → reduce, as per-stage task durations."""
    return [
        [wide_task_s] * width,
        [reduce_task_s],
        [wide_task_s] * width,
        [reduce_task_s],
    ]


@dataclass
class _Block:
    workers: int
    provisioned_at: float
    ready_at: float
    released_at: Optional[float] = None

    def active(self, t: float) -> bool:
        return self.ready_at <= t and (self.released_at is None or t < self.released_at)

    def pending(self, t: float) -> bool:
        return self.provisioned_at <= t < self.ready_at and self.released_at is None


@dataclass
class ElasticityResult:
    """Outputs of one simulated run."""

    makespan_s: float
    utilization: float
    timeline: List[Dict[str, float]] = field(default_factory=list)
    task_records: List[Dict[str, float]] = field(default_factory=list)
    scaling_events: List[Dict[str, float]] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        return {"makespan_s": self.makespan_s, "utilization": self.utilization}


class ElasticitySimulation:
    """Simulate block-elastic execution of a staged workflow."""

    def __init__(
        self,
        workflow: Optional[Sequence[Sequence[float]]] = None,
        workers_per_block: int = 5,
        init_blocks: int = 4,
        min_blocks: int = 1,
        max_blocks: int = 4,
        provision_delay_s: float = 15.0,
        strategy_period_s: float = 5.0,
        max_idletime_s: float = 5.0,
        scale_in_delay_s: float = 10.0,
        parallelism: float = 1.0,
        elastic: bool = True,
        dt: float = 0.5,
    ):
        self.workflow = [list(stage) for stage in (workflow or four_stage_workflow())]
        self.workers_per_block = workers_per_block
        self.init_blocks = init_blocks
        self.min_blocks = min_blocks
        self.max_blocks = max_blocks
        self.provision_delay_s = provision_delay_s
        self.strategy_period_s = strategy_period_s
        self.max_idletime_s = max_idletime_s
        self.scale_in_delay_s = scale_in_delay_s
        self.parallelism = parallelism
        self.elastic = elastic
        self.dt = dt

    # ------------------------------------------------------------------
    def run(self) -> ElasticityResult:
        t = 0.0
        blocks: List[_Block] = [
            _Block(self.workers_per_block, provisioned_at=0.0, ready_at=0.0) for _ in range(self.init_blocks)
        ]
        stage_index = 0
        pending: List[float] = list(self.workflow[0])
        waiting_since: Dict[int, float] = {i: 0.0 for i in range(len(pending))}
        running: List[Dict[str, float]] = []  # {remaining, started}
        timeline: List[Dict[str, float]] = []
        task_records: List[Dict[str, float]] = []
        scaling_events: List[Dict[str, float]] = []
        busy_worker_seconds = 0.0
        active_worker_seconds = 0.0
        idle_since: Optional[float] = None
        surplus_since: Optional[float] = None
        next_strategy_at = 0.0
        max_t = 24 * 3600.0  # safety stop

        def active_workers(now: float) -> int:
            return sum(b.workers for b in blocks if b.active(now))

        while t < max_t:
            # --- progress running tasks
            for task in running:
                task["remaining"] -= self.dt
            finished = [task for task in running if task["remaining"] <= 1e-9]
            for task in finished:
                task_records.append(
                    {"stage": stage_index, "queued_at": task["queued_at"], "started": task["started"], "ended": t}
                )
            running = [task for task in running if task["remaining"] > 1e-9]

            # --- stage advance: all tasks of the current stage done and none pending
            if not pending and not running:
                if stage_index + 1 < len(self.workflow):
                    stage_index += 1
                    pending = list(self.workflow[stage_index])
                    waiting_since = {i: t for i in range(len(pending))}
                else:
                    break  # workflow complete

            # --- elasticity strategy
            if self.elastic and t >= next_strategy_at:
                next_strategy_at = t + self.strategy_period_s
                outstanding = len(pending) + len(running)
                active_blocks = [b for b in blocks if b.active(t) or b.pending(t)]
                slots = sum(b.workers for b in active_blocks)
                if outstanding == 0:
                    idle_since = idle_since if idle_since is not None else t
                else:
                    idle_since = None
                # scale out
                if outstanding > slots and len(active_blocks) < self.max_blocks:
                    surplus_since = None
                    needed = int(
                        min(
                            self.max_blocks - len(active_blocks),
                            max(1, round((outstanding - slots) * self.parallelism / self.workers_per_block)),
                        )
                    )
                    for _ in range(needed):
                        blocks.append(
                            _Block(self.workers_per_block, provisioned_at=t, ready_at=t + self.provision_delay_s)
                        )
                    scaling_events.append({"time": t, "action": 1.0, "blocks": float(needed)})
                # scale in: release capacity only after the surplus persists for
                # scale_in_delay_s (blocks are not dropped on a momentary dip).
                elif outstanding < slots and len(active_blocks) > self.min_blocks:
                    if surplus_since is None:
                        surplus_since = t
                    if t - surplus_since >= self.scale_in_delay_s:
                        needed_blocks = max(self.min_blocks, -(-outstanding // self.workers_per_block))
                        to_release = len(active_blocks) - needed_blocks
                        released = 0
                        for block in reversed(blocks):
                            if released >= to_release:
                                break
                            if block.active(t) or block.pending(t):
                                block.released_at = t
                                released += 1
                        if released:
                            scaling_events.append({"time": t, "action": -1.0, "blocks": float(released)})
                else:
                    surplus_since = None

            # --- schedule pending tasks onto free workers
            workers_now = active_workers(t)
            free = workers_now - len(running)
            while pending and free > 0:
                duration = pending.pop(0)
                queued_at = waiting_since.pop(len(pending), t)
                running.append({"remaining": duration, "started": t, "queued_at": queued_at})
                free -= 1

            # --- accounting
            busy_worker_seconds += len(running) * self.dt
            active_worker_seconds += workers_now * self.dt
            timeline.append({"time": t, "active_workers": float(workers_now), "busy_workers": float(len(running))})
            t += self.dt

        utilization = busy_worker_seconds / active_worker_seconds if active_worker_seconds else 0.0
        return ElasticityResult(
            makespan_s=t,
            utilization=utilization,
            timeline=timeline,
            task_records=task_records,
            scaling_events=scaling_events,
        )


def compare_elastic_vs_static(**kwargs) -> Dict[str, Dict[str, float]]:
    """Run the Fig. 6 comparison; returns summaries keyed by 'static' / 'elastic'."""
    static = ElasticitySimulation(elastic=False, **kwargs).run()
    elastic = ElasticitySimulation(elastic=True, **kwargs).run()
    return {"static": static.summary(), "elastic": elastic.summary()}
