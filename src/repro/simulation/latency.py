"""Single-task latency model (paper Fig. 3).

Fig. 3 shows the distribution of task latencies when 1000 tasks are run
sequentially against one connected worker. The model draws samples around
each framework's analytic single-task latency with a log-normal-ish jitter,
reproducing both the ordering (ThreadPool < LLEX < HTEX < EXEX < IPP < Dask)
and the qualitatively tighter spread of LLEX that the paper calls out.
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

import numpy as np

from repro.simulation.models import FrameworkModel, get_model

#: Number of sequential tasks used in the paper's latency experiment.
LATENCY_EXPERIMENT_TASKS = 1000


def _resolve(model: Union[str, FrameworkModel]) -> FrameworkModel:
    return model if isinstance(model, FrameworkModel) else get_model(model)


def latency_samples(
    model: Union[str, FrameworkModel],
    n_samples: int = LATENCY_EXPERIMENT_TASKS,
    seed: int = 0,
) -> np.ndarray:
    """Per-task latency samples (seconds) for one framework."""
    m = _resolve(model)
    rng = np.random.default_rng(seed + hash(m.name) % (2**16))
    base = m.single_task_latency_s()
    sigma = m.latency_jitter_fraction
    # Log-normal jitter keeps latencies positive and right-skewed, which is
    # what real task-latency distributions look like.
    samples = base * rng.lognormal(mean=0.0, sigma=sigma, size=n_samples)
    return samples


def latency_summary(
    frameworks: Iterable[Union[str, FrameworkModel]],
    n_samples: int = LATENCY_EXPERIMENT_TASKS,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Mean / median / p95 latency (milliseconds) per framework."""
    summary: Dict[str, Dict[str, float]] = {}
    for fw in frameworks:
        m = _resolve(fw)
        samples_ms = latency_samples(m, n_samples, seed) * 1000.0
        summary[m.name] = {
            "mean_ms": float(np.mean(samples_ms)),
            "median_ms": float(np.median(samples_ms)),
            "p95_ms": float(np.percentile(samples_ms, 95)),
            "std_ms": float(np.std(samples_ms)),
        }
    return summary
