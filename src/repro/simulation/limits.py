"""Capacity limits (paper Table 2).

Table 2 reports, per framework, the maximum number of connected workers and
nodes observed on Blue Waters and the maximum tasks/second observed on
Midway. The worker/node maxima come straight from the framework models
(they are architectural or allocation limits); the throughput column is
computed by the throughput model.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.simulation.models import FrameworkModel, get_model
from repro.simulation.throughput import best_throughput

#: The frameworks listed in Table 2, in the paper's row order.
TABLE2_FRAMEWORKS = ("ipp", "htex", "exex", "fireworks", "dask")

#: Rows of Table 2 as printed in the paper, for EXPERIMENTS.md comparison.
PAPER_TABLE2 = {
    "ipp": {"max_workers": 2048, "max_nodes": 64, "max_tasks_per_s": 330},
    "htex": {"max_workers": 65536, "max_nodes": 2048, "max_tasks_per_s": 1181},
    "exex": {"max_workers": 262144, "max_nodes": 8192, "max_tasks_per_s": 1176},
    "fireworks": {"max_workers": 1024, "max_nodes": 32, "max_tasks_per_s": 4},
    "dask": {"max_workers": 8192, "max_nodes": 256, "max_tasks_per_s": 2617},
}


def _resolve(model: Union[str, FrameworkModel]) -> FrameworkModel:
    return model if isinstance(model, FrameworkModel) else get_model(model)


def max_connected_workers(model: Union[str, FrameworkModel]) -> Optional[int]:
    return _resolve(model).max_workers


def max_nodes(model: Union[str, FrameworkModel]) -> Optional[int]:
    return _resolve(model).max_nodes


def capacity_table(frameworks: Iterable[str] = TABLE2_FRAMEWORKS) -> Dict[str, Dict[str, Optional[float]]]:
    """Regenerate Table 2: max workers, max nodes, max tasks/s per framework."""
    table: Dict[str, Dict[str, Optional[float]]] = {}
    for name in frameworks:
        m = get_model(name)
        table[m.name] = {
            "max_workers": m.max_workers,
            "max_nodes": m.max_nodes,
            "max_tasks_per_s": round(best_throughput(m), 1),
        }
    return table
