"""Per-framework performance models.

Each framework is described by a handful of constants with direct physical
interpretations:

* ``submit_overhead_s``  — client-side cost to emit one task,
* ``central_overhead_s`` — cost the central component (interchange, hub,
  scheduler, database) pays per task,
* ``central_batch``      — how many tasks the central component moves per
  message (Parsl's interchange batches; IPP/FireWorks do not),
* ``per_worker_penalty_s`` — extra per-task central cost added per 1024
  connected workers (captures the degradation of centralized designs),
* ``worker_overhead_s``  — per-task cost on the worker (deserialize, sandbox),
* ``rtt_s``              — network round-trip between components,
* ``hops``               — message hops on the task's critical path,
* ``max_workers`` / ``max_nodes`` — hard scale limits (Table 2),
* ``startup_s``          — fixed cost to get the framework running.

The calibration targets are the paper's Fig. 3 latencies, Table 2 maxima,
and the qualitative Fig. 4 behaviour (HTEX/EXEX flat, IPP/Dask degrade past
~1k workers, FireWorks an order of magnitude slower throughout).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class FrameworkModel:
    """Analytic description of one task-execution framework."""

    name: str
    submit_overhead_s: float
    central_overhead_s: float
    worker_overhead_s: float
    rtt_s: float
    hops: int
    central_batch: int = 1
    per_worker_penalty_s: float = 0.0
    max_workers: Optional[int] = None
    max_nodes: Optional[int] = None
    workers_per_node: int = 32
    startup_s: float = 1.0
    latency_jitter_fraction: float = 0.15
    #: Measured peak throughput (tasks/s) when known (Table 2); when set it
    #: overrides the batch-derived central cost as the base dispatch rate.
    peak_throughput_tasks_per_s: Optional[float] = None

    # ------------------------------------------------------------------
    def single_task_latency_s(self, network_rtt_s: Optional[float] = None) -> float:
        """Round-trip latency of one task submitted alone (Fig. 3 quantity)."""
        rtt = self.rtt_s if network_rtt_s is None else network_rtt_s
        return (
            self.submit_overhead_s
            + self.central_overhead_s
            + self.worker_overhead_s
            + self.hops * rtt
        )

    def central_cost_per_task_s(self, n_workers: int) -> float:
        """Effective central-component time consumed by one task at a given scale."""
        degradation = self.per_worker_penalty_s * (n_workers / 1024.0)
        if self.peak_throughput_tasks_per_s:
            base = 1.0 / self.peak_throughput_tasks_per_s
        else:
            base = self.central_overhead_s / max(self.central_batch, 1)
        return base + degradation

    def central_throughput_tasks_per_s(self, n_workers: int = 1) -> float:
        """Peak task throughput of the central component."""
        return 1.0 / max(self.central_cost_per_task_s(n_workers), 1e-9)

    def supports_workers(self, n_workers: int) -> bool:
        return self.max_workers is None or n_workers <= self.max_workers

    def supports_nodes(self, n_nodes: int) -> bool:
        return self.max_nodes is None or n_nodes <= self.max_nodes

    def with_overrides(self, **kwargs) -> "FrameworkModel":
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# Calibrated models.
#
# Latency targets (Midway, Fig. 3): ThreadPool ~1.0 ms, LLEX 3.47 ms,
# HTEX 6.87 ms, EXEX 9.83 ms, IPP 11.72 ms, Dask 16.19 ms.
# Throughput targets (Midway, Table 2): IPP 330, HTEX 1181, EXEX 1176,
# FireWorks 4, Dask 2617 tasks/s.
# Scale limits (Blue Waters, Table 2): IPP 2048 workers / 64 nodes,
# HTEX 65 536 / 2048*, EXEX 262 144 / 8192*, FireWorks 1024 / 32,
# Dask 8192 / 256.  (* allocation-limited, not a hard framework limit; the
# models keep them as the largest demonstrated scale.)
# ---------------------------------------------------------------------------

_MIDWAY_RTT_S = 0.00007   # 0.07 ms (paper §5)
_BLUEWATERS_RTT_S = 0.00004  # 0.04 ms (paper §5)

FRAMEWORK_MODELS: Dict[str, FrameworkModel] = {
    "threads": FrameworkModel(
        name="threads",
        submit_overhead_s=0.0004,
        central_overhead_s=0.0002,
        worker_overhead_s=0.0004,
        rtt_s=0.0,
        hops=0,
        central_batch=1,
        max_workers=64,
        max_nodes=1,
        workers_per_node=64,
        startup_s=0.0,
    ),
    "llex": FrameworkModel(
        name="llex",
        submit_overhead_s=0.0008,
        central_overhead_s=0.0012,
        worker_overhead_s=0.0012,
        rtt_s=_MIDWAY_RTT_S,
        hops=4,            # client->interchange->worker and back (one fewer hop each way than HTEX)
        central_batch=1,
        per_worker_penalty_s=0.0,
        max_workers=320,   # ~10 nodes of workers (Fig. 7 guidance)
        max_nodes=10,
        startup_s=1.0,
    ),
    "htex": FrameworkModel(
        name="htex",
        submit_overhead_s=0.0010,
        central_overhead_s=0.0027,
        worker_overhead_s=0.0030,
        rtt_s=_BLUEWATERS_RTT_S,
        hops=6,            # client->interchange->manager->worker and back
        central_batch=4,   # interchange batches tasks to managers
        per_worker_penalty_s=0.000002,
        max_workers=65536,
        max_nodes=2048,
        startup_s=2.0,
        peak_throughput_tasks_per_s=1181.0,
    ),
    "exex": FrameworkModel(
        name="exex",
        submit_overhead_s=0.0010,
        central_overhead_s=0.0028,
        worker_overhead_s=0.0058,
        rtt_s=_BLUEWATERS_RTT_S,
        hops=6,
        central_batch=4,
        per_worker_penalty_s=0.000001,  # hierarchical distribution shields the interchange
        max_workers=262144,
        max_nodes=8192,
        startup_s=3.0,
        peak_throughput_tasks_per_s=1176.0,
    ),
    "ipp": FrameworkModel(
        name="ipp",
        submit_overhead_s=0.0015,
        central_overhead_s=0.0060,
        worker_overhead_s=0.0040,
        rtt_s=_MIDWAY_RTT_S,
        hops=4,
        central_batch=1,      # hub handles every task individually -> ~330 tasks/s
        per_worker_penalty_s=0.004,   # hub degrades quickly beyond ~512 workers
        max_workers=2048,
        max_nodes=64,
        startup_s=2.0,
        peak_throughput_tasks_per_s=330.0,
    ),
    "fireworks": FrameworkModel(
        name="fireworks",
        submit_overhead_s=0.010,
        central_overhead_s=0.250,     # several MongoDB operations per task -> ~4 tasks/s
        worker_overhead_s=0.020,
        rtt_s=_MIDWAY_RTT_S,
        hops=4,
        central_batch=1,
        per_worker_penalty_s=0.010,
        max_workers=1024,
        max_nodes=32,
        startup_s=5.0,
        peak_throughput_tasks_per_s=4.0,
    ),
    "dask": FrameworkModel(
        name="dask",
        submit_overhead_s=0.0020,
        central_overhead_s=0.0120,
        worker_overhead_s=0.0020,
        rtt_s=_MIDWAY_RTT_S,
        hops=2,               # direct client->scheduler->worker path, single scheduler process
        central_batch=32,     # amortized scheduling -> ~2617 tasks/s peak
        per_worker_penalty_s=0.0015,  # per-task scheduler work grows with workers
        max_workers=8192,
        max_nodes=256,
        startup_s=1.5,
        peak_throughput_tasks_per_s=2617.0,
    ),
}


def get_model(name: str) -> FrameworkModel:
    """Look up a framework model by name (case-insensitive)."""
    key = name.lower()
    if key not in FRAMEWORK_MODELS:
        raise KeyError(f"unknown framework {name!r}; known: {sorted(FRAMEWORK_MODELS)}")
    return FRAMEWORK_MODELS[key]
