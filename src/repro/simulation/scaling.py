"""Strong and weak scaling models (paper Fig. 4).

Completion time of a bag of independent tasks is modelled as a pipelined
bound::

    T(n_tasks, d, W) = startup
                     + max( n_tasks * c_central(W),            # dispatch bound
                            ceil(n_tasks / W) * (d + c_worker) )  # execution bound
                     + latency_tail

where ``c_central(W)`` is the central component's per-task cost at ``W``
connected workers (growing for centralized designs) and ``c_worker`` the
per-task worker overhead. Requesting more workers than the framework
supports returns ``None`` — the "could not run" points in Fig. 4 / Table 2.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Union

from repro.simulation.models import FrameworkModel, get_model

#: The task counts used in the paper's strong-scaling runs.
STRONG_SCALING_TASKS = 50_000
FIREWORKS_STRONG_SCALING_TASKS = 5_000
#: Tasks per worker used in the paper's weak-scaling runs.
WEAK_SCALING_TASKS_PER_WORKER = 10
#: Task durations (seconds) used in Fig. 4: no-op, 10 ms, 100 ms, 1 s.
TASK_DURATIONS_S = (0.0, 0.01, 0.1, 1.0)
#: Worker counts swept in the benchmarks (powers of two as in the paper).
DEFAULT_WORKER_COUNTS = tuple(2 ** i for i in range(0, 19))  # 1 .. 262144


def _resolve(model: Union[str, FrameworkModel]) -> FrameworkModel:
    return model if isinstance(model, FrameworkModel) else get_model(model)


def completion_time(
    model: Union[str, FrameworkModel],
    n_tasks: int,
    task_duration_s: float,
    n_workers: int,
    include_startup: bool = True,
) -> Optional[float]:
    """Completion time in seconds, or None if the scale is unsupported."""
    m = _resolve(model)
    if n_workers < 1 or n_tasks < 1:
        raise ValueError("n_workers and n_tasks must be >= 1")
    if not m.supports_workers(n_workers):
        return None
    dispatch_bound = n_tasks * m.central_cost_per_task_s(n_workers)
    waves = math.ceil(n_tasks / n_workers)
    execute_bound = waves * (task_duration_s + m.worker_overhead_s)
    submit_bound = n_tasks * m.submit_overhead_s / max(m.central_batch, 1)
    total = max(dispatch_bound, execute_bound, submit_bound) + m.single_task_latency_s()
    if include_startup:
        total += m.startup_s
    return total


def strong_scaling_time(
    model: Union[str, FrameworkModel],
    n_workers: int,
    task_duration_s: float = 0.0,
    n_tasks: int = STRONG_SCALING_TASKS,
) -> Optional[float]:
    """Fig. 4 (top): fixed total work, growing worker count."""
    return completion_time(model, n_tasks, task_duration_s, n_workers)


def weak_scaling_time(
    model: Union[str, FrameworkModel],
    n_workers: int,
    task_duration_s: float = 0.0,
    tasks_per_worker: int = WEAK_SCALING_TASKS_PER_WORKER,
) -> Optional[float]:
    """Fig. 4 (bottom): fixed work per worker, growing worker count."""
    return completion_time(model, tasks_per_worker * n_workers, task_duration_s, n_workers)


def scaling_series(
    frameworks: Iterable[Union[str, FrameworkModel]],
    mode: str = "strong",
    task_duration_s: float = 0.0,
    worker_counts: Iterable[int] = DEFAULT_WORKER_COUNTS,
    n_tasks: int = STRONG_SCALING_TASKS,
    tasks_per_worker: int = WEAK_SCALING_TASKS_PER_WORKER,
) -> Dict[str, List[Optional[float]]]:
    """Completion-time series per framework over the worker sweep.

    FireWorks automatically uses the reduced 5000-task workload in strong
    scaling, matching the paper's methodology.
    """
    if mode not in ("strong", "weak"):
        raise ValueError("mode must be 'strong' or 'weak'")
    worker_counts = list(worker_counts)
    series: Dict[str, List[Optional[float]]] = {}
    for fw in frameworks:
        m = _resolve(fw)
        values: List[Optional[float]] = []
        for w in worker_counts:
            if mode == "strong":
                tasks = FIREWORKS_STRONG_SCALING_TASKS if m.name == "fireworks" else n_tasks
                values.append(strong_scaling_time(m, w, task_duration_s, n_tasks=tasks))
            else:
                values.append(weak_scaling_time(m, w, task_duration_s, tasks_per_worker=tasks_per_worker))
        series[m.name] = values
    return series


def sublinear_onset_workers(
    model: Union[str, FrameworkModel],
    task_duration_s: float = 0.0,
    tasks_per_worker: int = WEAK_SCALING_TASKS_PER_WORKER,
    threshold: float = 1.5,
    worker_counts: Iterable[int] = DEFAULT_WORKER_COUNTS,
) -> Optional[int]:
    """The worker count at which weak scaling departs from constant time.

    Defined as the first worker count whose completion time exceeds
    ``threshold`` times the single-worker completion time — the quantity the
    paper discusses qualitatively ("FireWorks scales sublinearly from around
    32 workers, IPP at 256, Dask/HTEX/EXEX at 1024").
    """
    m = _resolve(model)
    baseline = weak_scaling_time(m, 1, task_duration_s, tasks_per_worker)
    if baseline is None:
        return None
    for w in worker_counts:
        t = weak_scaling_time(m, w, task_duration_s, tasks_per_worker)
        if t is None:
            return w
        if t > threshold * baseline:
            return w
    return None
