"""Maximum-throughput model (paper Table 2, tasks/second column).

Throughput is measured in the paper by running 50 000 no-op tasks on Midway
and dividing by completion time; at that scale throughput is bounded by the
central component, so the model reports the central throughput at the given
worker count (degraded by the per-worker penalty for centralized systems).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.simulation.models import FrameworkModel, get_model
from repro.simulation.scaling import completion_time

#: The workload used for the Table 2 throughput measurements.
THROUGHPUT_TASKS = 50_000


def _resolve(model: Union[str, FrameworkModel]) -> FrameworkModel:
    return model if isinstance(model, FrameworkModel) else get_model(model)


def max_throughput(
    model: Union[str, FrameworkModel],
    n_workers: int = 256,
    n_tasks: int = THROUGHPUT_TASKS,
) -> Optional[float]:
    """Peak no-op throughput (tasks/s) at a given worker count."""
    m = _resolve(model)
    t = completion_time(m, n_tasks, 0.0, n_workers, include_startup=False)
    if t is None or t <= 0:
        return None
    return n_tasks / t


def throughput_series(
    frameworks: Iterable[Union[str, FrameworkModel]],
    worker_counts: Iterable[int] = (1, 4, 16, 64, 256, 1024),
    n_tasks: int = THROUGHPUT_TASKS,
) -> Dict[str, List[Optional[float]]]:
    """Throughput as a function of worker count for each framework."""
    worker_counts = list(worker_counts)
    return {
        _resolve(fw).name: [max_throughput(fw, w, n_tasks) for w in worker_counts]
        for fw in frameworks
    }


def best_throughput(model: Union[str, FrameworkModel], n_tasks: int = THROUGHPUT_TASKS) -> float:
    """The best throughput over a sweep of worker counts (the Table 2 number)."""
    m = _resolve(model)
    candidates = []
    w = 1
    while m.supports_workers(w):
        value = max_throughput(m, w, n_tasks)
        if value is not None:
            candidates.append(value)
        w *= 2
    return max(candidates) if candidates else 0.0
