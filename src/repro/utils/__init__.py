"""Small utilities shared across the repro package."""

from repro.utils.ids import id_generator, make_task_id, make_block_id, make_manager_id
from repro.utils.timers import Timer, wtime, RepeatedTimer
from repro.utils.addresses import address_by_hostname, address_by_interface, find_free_port
from repro.utils.threads import make_callback_thread, SimpleQueueDrain

__all__ = [
    "id_generator",
    "make_task_id",
    "make_block_id",
    "make_manager_id",
    "Timer",
    "wtime",
    "RepeatedTimer",
    "address_by_hostname",
    "address_by_interface",
    "find_free_port",
    "make_callback_thread",
    "SimpleQueueDrain",
]
