"""Network address helpers.

The paper's example configuration (Listing 1) uses ``address_by_hostname()``
to tell workers how to reach the interchange. We provide the same helpers;
in this reproduction all traffic stays on localhost, so the helpers mostly
resolve to the loopback address, but the API matches.
"""

from __future__ import annotations

import socket
from contextlib import closing


def address_by_hostname() -> str:
    """Return an address for this host derived from its hostname."""
    try:
        return socket.gethostbyname(socket.gethostname())
    except OSError:
        return "127.0.0.1"


def address_by_interface(ifname: str = "lo") -> str:
    """Return the address of a named interface.

    Without netifaces we cannot inspect arbitrary interfaces; the loopback
    interface (the only one used in this reproduction) resolves to 127.0.0.1
    and anything else falls back to :func:`address_by_hostname`.
    """
    if ifname in ("lo", "lo0", "loopback"):
        return "127.0.0.1"
    return address_by_hostname()


def find_free_port(host: str = "127.0.0.1") -> int:
    """Ask the OS for an unused TCP port and return it.

    There is an inherent race between finding and binding the port; callers
    that care (the interchange) bind immediately and retry on failure.
    """
    with closing(socket.socket(socket.AF_INET, socket.SOCK_STREAM)) as s:
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind((host, 0))
        return s.getsockname()[1]


def probe_port_open(host: str, port: int, timeout: float = 0.5) -> bool:
    """Return True if something is listening on ``host:port``."""
    with closing(socket.socket(socket.AF_INET, socket.SOCK_STREAM)) as s:
        s.settimeout(timeout)
        try:
            s.connect((host, port))
            return True
        except OSError:
            return False
