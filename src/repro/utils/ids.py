"""Identifier generation helpers.

Task ids are small integers handed out by the DataFlowKernel; blocks,
managers and workers use short opaque string ids so that log lines and
monitoring records remain readable.
"""

from __future__ import annotations

import itertools
import threading
import uuid
from typing import Iterator


def id_generator(prefix: str = "") -> Iterator[str]:
    """Yield an infinite sequence of ids ``prefix0, prefix1, ...``."""
    for i in itertools.count():
        yield f"{prefix}{i}"


class _Counter:
    """A thread-safe monotonically increasing counter."""

    def __init__(self, start: int = 0):
        self._value = start
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            v = self._value
            self._value += 1
            return v

    def peek(self) -> int:
        with self._lock:
            return self._value


_task_counter = _Counter()
_block_counter = _Counter()
_manager_counter = _Counter()


def make_task_id() -> int:
    """Return the next global task id (used only when no DFK is managing ids)."""
    return _task_counter.next()


def make_block_id() -> str:
    """Return a short unique block id."""
    return f"block-{_block_counter.next()}"


def make_manager_id() -> str:
    """Return a unique manager id (uuid-based, as managers span processes)."""
    return f"manager-{_manager_counter.next()}-{uuid.uuid4().hex[:8]}"


def make_uid(prefix: str = "uid") -> str:
    """Return a globally unique identifier with a readable prefix."""
    return f"{prefix}-{uuid.uuid4().hex[:12]}"
