"""Threading helpers."""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, List, Optional


def make_callback_thread(target: Callable[[], None], name: str) -> threading.Thread:
    """Create (but do not start) a daemon thread with a readable name."""
    return threading.Thread(target=target, name=name, daemon=True)


class SimpleQueueDrain:
    """Drain a queue.Queue in the background, invoking a handler per item.

    Used by executors to process result messages without blocking the
    submitting thread. ``None`` is the poison pill that terminates the drain.
    """

    def __init__(self, source: "queue.Queue[Any]", handler: Callable[[Any], None], name: str = "drain"):
        self.source = source
        self.handler = handler
        self.name = name
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._errors: List[BaseException] = []

    def start(self) -> "SimpleQueueDrain":
        self._thread.start()
        return self

    def _run(self) -> None:
        while True:
            item = self.source.get()
            if item is None:
                break
            try:
                self.handler(item)
            except BaseException as exc:  # noqa: BLE001 - record, keep draining
                self._errors.append(exc)

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        self.source.put(None)
        self._thread.join(timeout=timeout)

    @property
    def errors(self) -> List[BaseException]:
        return list(self._errors)


class AtomicCounter:
    """A minimal thread-safe counter used for queue-depth accounting."""

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            return self._value

    def decrement(self, amount: int = 1) -> int:
        with self._lock:
            self._value -= amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value
