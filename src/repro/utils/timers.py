"""Timing helpers used by executors, the strategy loop, and benchmarks."""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


def wtime() -> float:
    """Wall-clock time in seconds (monotonic where it matters, epoch here).

    We deliberately use ``time.time`` rather than ``time.monotonic`` because
    monitoring records are timestamped for human consumption; latency
    *measurements* in benchmarks use ``time.perf_counter`` directly.
    """
    return time.time()


class Timer:
    """A simple context-manager stopwatch.

    Example::

        with Timer() as t:
            do_work()
        print(t.elapsed)
    """

    def __init__(self):
        self.start: Optional[float] = None
        self.end: Optional[float] = None

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.end = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Elapsed seconds; usable both inside and after the ``with`` block."""
        if self.start is None:
            return 0.0
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start


class RepeatedTimer:
    """Call ``callback`` every ``interval`` seconds on a daemon thread.

    Used by the elasticity strategy (periodic scaling decisions) and by the
    HTEX interchange (heartbeat sweeps). The callback runs on a dedicated
    thread; exceptions are swallowed after being passed to ``on_error`` so a
    single bad sweep does not kill the timer.
    """

    def __init__(
        self,
        interval: float,
        callback: Callable[[], None],
        name: str = "repeated-timer",
        on_error: Optional[Callable[[BaseException], None]] = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.callback = callback
        self.name = name
        self.on_error = on_error
        self._kill_event = threading.Event()
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()

    def _loop(self) -> None:
        while not self._kill_event.wait(self.interval):
            try:
                self.callback()
            except BaseException as exc:  # noqa: BLE001 - timer must survive
                if self.on_error is not None:
                    try:
                        self.on_error(exc)
                    except BaseException:
                        pass

    def close(self) -> None:
        """Stop the timer and join its thread."""
        self._kill_event.set()
        if self._started:
            self._thread.join(timeout=5)

    def __enter__(self) -> "RepeatedTimer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
