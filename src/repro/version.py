"""Package version."""

VERSION = "1.0.0"
