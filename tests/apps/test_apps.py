"""Tests for the @python_app, @bash_app, and @join_app decorators."""

import time

import pytest

import repro
from repro import File, bash_app, join_app, python_app
from repro.core.futures import AppFuture
from repro.errors import AppTimeout, BashExitFailure, BashAppNoReturn, NoSuchExecutorError


@python_app
def py_add(a, b):
    return a + b


@python_app(cache=False)
def py_uncached_time():
    return time.time()


@python_app(executors=["threads"])
def py_on_threads():
    import threading
    return threading.current_thread().name


@bash_app
def bash_echo(message, stdout=None, stderr=None):
    return f"echo {message}"


@bash_app
def bash_fail():
    return "exit 7"


@bash_app
def bash_no_command():
    return ""


@bash_app
def bash_make_file(outputs=None):
    return "echo payload > {}".format(outputs[0].filepath)


@python_app
def py_read(inputs=None):
    with open(inputs[0].filepath) as fh:
        return fh.read().strip()


@python_app
def py_sleepy(duration):
    time.sleep(duration)
    return duration


@join_app
def join_fanout(n):
    return [py_add(i, 1) for i in range(n)]


@join_app
def join_single(x):
    return py_add(x, 100)


@join_app
def join_bad():
    return 42  # not a future


class TestPythonApps:
    def test_returns_app_future(self, threads_dfk):
        fut = py_add(1, 2)
        assert isinstance(fut, AppFuture)
        assert fut.result(timeout=10) == 3
        assert fut.task_status() in ("exec_done", "memo_done")

    def test_executor_pinning(self, local_dfk):
        name = py_on_threads().result(timeout=10)
        assert name.startswith("repro-worker")

    def test_unknown_executor_label(self, threads_dfk):
        @python_app(executors=["gpu_cluster"])
        def nope():
            return 1

        with pytest.raises(NoSuchExecutorError):
            nope()

    def test_cache_false_reexecutes(self, threads_dfk):
        first = py_uncached_time().result(timeout=10)
        second = py_uncached_time().result(timeout=10)
        assert first != second

    def test_walltime_timeout(self, threads_dfk):
        fut = py_sleepy(5, walltime=0.2)
        with pytest.raises(AppTimeout):
            fut.result(timeout=10)

    def test_walltime_success(self, threads_dfk):
        assert py_sleepy(0.01, walltime=5).result(timeout=10) == 0.01

    def test_kwargs_and_defaults(self, threads_dfk):
        @python_app
        def with_default(a, b=10):
            return a * b

        assert with_default(3).result(timeout=10) == 30
        assert with_default(3, b=2).result(timeout=10) == 6


class TestBashApps:
    def test_stdout_redirection(self, threads_dfk, tmp_path):
        out = tmp_path / "echo.out"
        fut = bash_echo("hello-bash", stdout=str(out))
        assert fut.result(timeout=20) == 0
        assert out.read_text().strip() == "hello-bash"

    def test_nonzero_exit_raises(self, threads_dfk):
        with pytest.raises(BashExitFailure) as excinfo:
            bash_fail().result(timeout=20)
        assert excinfo.value.exitcode == 7

    def test_empty_command_rejected(self, threads_dfk):
        with pytest.raises(BashAppNoReturn):
            bash_no_command().result(timeout=20)

    def test_outputs_produce_datafutures(self, threads_dfk, tmp_path):
        target = File(str(tmp_path / "made.txt"))
        fut = bash_make_file(outputs=[target])
        assert fut.result(timeout=20) == 0
        assert len(fut.outputs) == 1
        staged = fut.outputs[0].result(timeout=10)
        assert open(staged.filepath).read().strip() == "payload"

    def test_file_chaining_between_apps(self, threads_dfk, tmp_path):
        """bash app writes a file; python app depends on it via the DataFuture."""
        intermediate = File(str(tmp_path / "chain.txt"))
        producer = bash_make_file(outputs=[intermediate])
        consumer = py_read(inputs=[producer.outputs[0]])
        assert consumer.result(timeout=20) == "payload"


class TestJoinApps:
    def test_join_list(self, threads_dfk):
        assert join_fanout(4).result(timeout=20) == [1, 2, 3, 4]

    def test_join_single_future(self, threads_dfk):
        assert join_single(1).result(timeout=20) == 101

    def test_join_non_future_fails(self, threads_dfk):
        from repro.errors import JoinError

        with pytest.raises(JoinError):
            join_bad().result(timeout=20)


class TestDecoratorForms:
    def test_bare_and_called_decorators(self, threads_dfk):
        @python_app
        def bare(x):
            return x

        @python_app()
        def called(x):
            return x

        assert bare(1).result(timeout=10) == 1
        assert called(2).result(timeout=10) == 2

    def test_wrapping_preserves_metadata(self):
        assert py_add.__name__ == "py_add"


class TestSchedulingKeywords:
    def test_call_time_priority_consumed_not_forwarded(self, threads_dfk):
        @python_app
        def plain(x):
            return x

        # priority= is a scheduling keyword: never reaches the body.
        assert plain(5, priority=9).result(timeout=10) == 5

    def test_app_declaring_priority_param_keeps_receiving_it(self, threads_dfk):
        @python_app
        def rank(items, priority=1):
            return [priority] * len(items)

        # The function's own signature wins: priority=3 is an ordinary
        # argument here, not a scheduling hint.
        assert rank([1, 2], priority=3).result(timeout=10) == [3, 3]

    def test_var_keyword_app_keeps_receiving_priority(self, threads_dfk):
        @python_app
        def render(**opts):
            return opts

        # **kwargs counts as the function declaring the name: the value
        # reaches the body exactly as it did before the scheduling kwargs
        # existed.
        assert render(priority=2).result(timeout=10) == {"priority": 2}

    def test_decorator_spec_still_applies_when_name_clashes(self, threads_dfk):
        @python_app(priority=7)
        def rank(items, priority=1):
            return priority

        dfk = repro.dfk()
        fut = rank([1], priority=2)
        assert fut.result(timeout=10) == 2  # call-time value reached the body
        assert dfk.tasks[fut.task_record.id].priority == 7  # decorator value scheduled it
