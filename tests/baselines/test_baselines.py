"""Tests for the IPP-, FireWorks-, and Dask-like baseline frameworks."""

import time

import pytest

from repro.baselines import (
    DaskDistributedLikeExecutor,
    FireWorksLikeExecutor,
    IPyParallelLikeExecutor,
)


def triple(x):
    return 3 * x


def crash():
    raise RuntimeError("baseline task failed")


@pytest.fixture(params=["ipp", "fireworks", "dask"])
def baseline(request, tmp_path):
    if request.param == "ipp":
        ex = IPyParallelLikeExecutor(engines=2, hub_overhead_s=0.0005)
    elif request.param == "fireworks":
        ex = FireWorksLikeExecutor(
            workers=2, db_op_latency_s=0.001, poll_interval_s=0.01,
            launchpad_path=str(tmp_path / "launchpad.db"),
        )
    else:
        ex = DaskDistributedLikeExecutor(workers=2)
    ex.start()
    yield ex
    ex.shutdown()


class TestBaselineExecution:
    def test_results(self, baseline):
        futures = [baseline.submit(triple, {}, i) for i in range(10)]
        assert [f.result(timeout=30) for f in futures] == [3 * i for i in range(10)]

    def test_exceptions(self, baseline):
        with pytest.raises(RuntimeError):
            baseline.submit(crash, {}).result(timeout=30)

    def test_connected_workers(self, baseline):
        assert baseline.connected_workers == 2

    def test_submit_before_start_rejected(self, tmp_path):
        for ex in (
            IPyParallelLikeExecutor(engines=1),
            FireWorksLikeExecutor(workers=1, launchpad_path=str(tmp_path / "lp2.db")),
            DaskDistributedLikeExecutor(workers=1),
        ):
            with pytest.raises(RuntimeError):
                ex.submit(triple, {}, 1)


class TestArchitecturalBottlenecks:
    def test_fireworks_database_counts_states(self, tmp_path):
        ex = FireWorksLikeExecutor(
            workers=1, db_op_latency_s=0.0, poll_interval_s=0.01,
            launchpad_path=str(tmp_path / "lp.db"),
        )
        ex.start()
        try:
            futures = [ex.submit(triple, {}, i) for i in range(5)]
            for f in futures:
                f.result(timeout=30)
            counts = ex.launchpad.counts()
            assert counts.get("COMPLETED", 0) == 5
        finally:
            ex.shutdown()

    def test_fireworks_is_slowest_per_task(self, tmp_path):
        """Per-task overhead ordering matches the paper: FireWorks >> IPP > Dask."""
        def measure(ex, n=5):
            ex.start()
            try:
                start = time.perf_counter()
                for i in range(n):
                    ex.submit(triple, {}, i).result(timeout=30)
                return (time.perf_counter() - start) / n
            finally:
                ex.shutdown()

        fw = measure(FireWorksLikeExecutor(workers=1, db_op_latency_s=0.01, poll_interval_s=0.01,
                                           launchpad_path=str(tmp_path / "slow.db")))
        dask = measure(DaskDistributedLikeExecutor(workers=1))
        assert fw > dask

    def test_dask_connection_limit(self):
        with pytest.raises(ConnectionError):
            DaskDistributedLikeExecutor(workers=10, max_connections=4)

    def test_ipp_hub_tracks_tasks(self):
        ex = IPyParallelLikeExecutor(engines=1, hub_overhead_s=0.0)
        ex.start()
        try:
            ex.submit(triple, {}, 2).result(timeout=30)
            assert any(entry["state"] == "done" for entry in ex._task_registry.values())
        finally:
            ex.shutdown()
