"""Tests for the local and (simulated) SSH channels."""


import pytest

from repro.auth.tokens import NativeAppAuthClient, TokenStore
from repro.channels import LocalChannel, SSHChannel
from repro.errors import ChannelError


class TestLocalChannel:
    def test_execute_wait(self, tmp_path):
        ch = LocalChannel(script_dir=str(tmp_path / "scripts"))
        result = ch.execute_wait("echo hello && echo err >&2")
        assert result.ok
        assert result.stdout.strip() == "hello"
        assert result.stderr.strip() == "err"

    def test_nonzero_exit(self, tmp_path):
        ch = LocalChannel(script_dir=str(tmp_path / "s"))
        result = ch.execute_wait("exit 3")
        assert result.exit_code == 3
        assert not result.ok

    def test_timeout(self, tmp_path):
        ch = LocalChannel(script_dir=str(tmp_path / "s"))
        result = ch.execute_wait("sleep 5", walltime=0.2)
        assert result.exit_code == 124

    def test_env_injection(self, tmp_path):
        ch = LocalChannel(script_dir=str(tmp_path / "s"), envs={"REPRO_TEST_VAR": "42"})
        assert ch.execute_wait("echo $REPRO_TEST_VAR").stdout.strip() == "42"

    def test_push_pull_file(self, tmp_path):
        ch = LocalChannel(script_dir=str(tmp_path / "s"))
        src = tmp_path / "data.txt"
        src.write_text("payload")
        dest = ch.push_file(str(src), str(tmp_path / "pushed"))
        assert open(dest).read() == "payload"
        back = ch.pull_file(dest, str(tmp_path / "pulled"))
        assert open(back).read() == "payload"

    def test_makedirs_and_execute_no_wait(self, tmp_path):
        ch = LocalChannel(script_dir=str(tmp_path / "s"))
        target = tmp_path / "a" / "b"
        ch.makedirs(str(target))
        assert target.is_dir()
        proc = ch.execute_no_wait("sleep 0.1")
        proc.wait(timeout=5)


class TestSSHChannel:
    def test_execute_in_remote_sandbox(self, tmp_path):
        ch = SSHChannel(hostname="cluster.example.edu", remote_root=str(tmp_path / "remote"), rtt_ms=0)
        result = ch.execute_wait("pwd")
        assert result.ok
        assert result.stdout.strip().startswith(str(tmp_path / "remote"))

    def test_push_maps_into_remote_root(self, tmp_path):
        ch = SSHChannel(remote_root=str(tmp_path / "remote"), rtt_ms=0)
        src = tmp_path / "input.txt"
        src.write_text("hello remote")
        dest = ch.push_file(str(src), "workdir")
        assert dest.startswith(str(tmp_path / "remote"))
        assert open(dest).read() == "hello remote"

    def test_pull_missing_file_raises(self, tmp_path):
        ch = SSHChannel(remote_root=str(tmp_path / "remote"), rtt_ms=0)
        with pytest.raises(ChannelError):
            ch.pull_file("does/not/exist.txt", str(tmp_path))

    def test_closed_channel_rejects_commands(self, tmp_path):
        ch = SSHChannel(remote_root=str(tmp_path / "remote"), rtt_ms=0)
        ch.close()
        with pytest.raises(ChannelError):
            ch.execute_wait("echo hi")

    def test_auth_token_validation(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "tokens.json"))
        client = NativeAppAuthClient()
        client.start_flow(["login.example.edu"])
        store.store_tokens(client.complete_flow("ok"))
        token = store.get_token("login.example.edu")
        # Correct token connects; wrong token raises.
        SSHChannel(hostname="login.example.edu", remote_root=str(tmp_path / "r1"), rtt_ms=0,
                   auth_token=token, token_store=store)
        with pytest.raises(ChannelError):
            SSHChannel(hostname="login.example.edu", remote_root=str(tmp_path / "r2"), rtt_ms=0,
                       auth_token="wrong", token_store=store)
