"""Tests for multipart/batch framing: one write carrying N payloads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comms import (
    FrameBatcher,
    FrameProtocolError,
    InprocDealer,
    InprocFabric,
    InprocRouter,
    MessageClient,
    MessageServer,
    decode_batch,
    decode_message,
    encode_batch,
    encode_message,
)


class TestBatchEncoding:
    def test_encode_decode_roundtrip(self):
        messages = [{"type": "tasks", "items": [1, 2]}, "plain", 42, [None, True]]
        assert decode_batch(encode_batch(messages)) == messages

    def test_single_message_batch_is_one_plain_frame(self):
        # A 1-batch is byte-identical to a single frame: receivers need no
        # batch awareness at all.
        assert encode_batch([{"a": 1}]) == encode_message({"a": 1})
        assert decode_message(encode_batch([{"a": 1}])) == {"a": 1}

    def test_empty_batch_rejected_on_encode(self):
        with pytest.raises(FrameProtocolError):
            encode_batch([])

    def test_empty_buffer_rejected_on_decode(self):
        with pytest.raises(FrameProtocolError):
            decode_batch(b"")

    def test_truncated_batch_rejected(self):
        buffer = encode_batch([{"a": 1}, {"b": 2}])
        with pytest.raises(FrameProtocolError):
            decode_batch(buffer[:-3])

    def test_trailing_garbage_header_rejected(self):
        buffer = encode_batch([{"a": 1}]) + b"\x01"
        with pytest.raises(FrameProtocolError):
            decode_batch(buffer)

    @given(st.lists(st.dictionaries(st.text(max_size=6), st.integers(), max_size=4), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, messages):
        assert decode_batch(encode_batch(messages)) == messages


class TestFrameBatcher:
    def test_flushes_when_full(self):
        batcher = FrameBatcher(max_items=3, max_delay=100.0)
        assert batcher.add("a") is None
        assert batcher.add("b") is None
        batch = batcher.add("c")
        assert batch is not None
        assert decode_batch(batch) == ["a", "b", "c"]
        assert len(batcher) == 0

    def test_partial_batch_flush_on_timeout(self):
        clock = {"now": 0.0}
        batcher = FrameBatcher(max_items=16, max_delay=0.05, clock=lambda: clock["now"])
        batcher.add("only")
        assert not batcher.due()
        clock["now"] = 0.049
        assert not batcher.due()
        clock["now"] = 0.051
        assert batcher.due()
        assert decode_batch(batcher.flush()) == ["only"]
        # Once drained, nothing is due and flush yields None (not an empty batch).
        assert not batcher.due()
        assert batcher.flush() is None

    def test_age_measured_from_oldest_message(self):
        clock = {"now": 0.0}
        batcher = FrameBatcher(max_items=16, max_delay=0.05, clock=lambda: clock["now"])
        batcher.add("first")
        clock["now"] = 0.04
        batcher.add("second")  # newer message must not reset the clock
        clock["now"] = 0.06
        assert batcher.due()
        assert decode_batch(batcher.flush()) == ["first", "second"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FrameBatcher(max_items=0)
        with pytest.raises(ValueError):
            FrameBatcher(max_delay=-1)


class TestSendManyTCP:
    def test_server_send_many_arrives_individually(self):
        with MessageServer() as server:
            client = MessageClient(server.host, server.port, identity="w0")
            server.recv(timeout=2)  # registration
            assert server.send_many("w0", [{"n": i} for i in range(5)])
            for i in range(5):
                assert client.recv(timeout=2) == {"n": i}
            client.close()

    def test_client_send_many_arrives_individually(self):
        with MessageServer() as server:
            client = MessageClient(server.host, server.port, identity="w0")
            server.recv(timeout=2)  # registration
            assert client.send_many([{"k": i} for i in range(4)])
            for i in range(4):
                ident, msg = server.recv(timeout=2)
                assert (ident, msg) == ("w0", {"k": i})
            client.close()

    def test_send_many_to_unknown_identity_returns_false(self):
        with MessageServer() as server:
            assert server.send_many("ghost", [{"x": 1}]) is False

    def test_send_many_empty_is_a_noop(self):
        with MessageServer() as server:
            client = MessageClient(server.host, server.port, identity="w0")
            server.recv(timeout=2)
            assert server.send_many("w0", []) is True
            assert client.send_many([]) is True
            client.close()


class TestSendManyInproc:
    def test_router_and_dealer_send_many(self):
        fabric = InprocFabric()
        router = InprocRouter("batch", fabric=fabric)
        dealer = InprocDealer("batch", identity="d1", fabric=fabric)
        router.recv(timeout=1)  # registration
        assert router.send_many("d1", [1, 2, 3])
        assert [dealer.recv(timeout=1) for _ in range(3)] == [1, 2, 3]
        assert dealer.send_many(["x", "y"])
        assert router.recv(timeout=1) == ("d1", "x")
        assert router.recv(timeout=1) == ("d1", "y")
        dealer.close()
        router.close()

    def test_send_many_unknown_peer_returns_false(self):
        fabric = InprocFabric()
        router = InprocRouter("nobody", fabric=fabric)
        assert router.send_many("ghost", [1]) is False
        router.close()
