"""Tests for the TCP and in-process message fabrics."""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.comms import (
    FrameProtocolError,
    InprocDealer,
    InprocFabric,
    InprocRouter,
    MessageClient,
    MessageServer,
    decode_message,
    encode_message,
)


class TestFraming:
    def test_encode_decode_roundtrip(self):
        for obj in [1, "msg", {"type": "tasks", "items": [1, 2]}, [None, True]]:
            assert decode_message(encode_message(obj)) == obj

    def test_truncated_frame_rejected(self):
        buf = encode_message({"a": 1})
        with pytest.raises(FrameProtocolError):
            decode_message(buf[:-2])

    def test_short_header_rejected(self):
        with pytest.raises(FrameProtocolError):
            decode_message(b"\x00")

    def test_oversized_frame_rejected(self):
        import repro.comms.protocol as protocol

        big = b"x" * (protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameProtocolError):
            encode_message(big)

    @given(st.dictionaries(st.text(max_size=8), st.integers(), max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, payload):
        assert decode_message(encode_message(payload)) == payload


class TestTCPServerClient:
    def test_registration_and_echo(self):
        with MessageServer() as server:
            client = MessageClient(server.host, server.port, identity="w0", registration_info={"kind": "test"})
            ident, msg = server.recv(timeout=2)
            assert ident == "w0"
            assert msg["type"] == "registration"
            assert msg["info"]["kind"] == "test"

            assert server.send("w0", {"type": "task", "n": 1})
            assert client.recv(timeout=2) == {"type": "task", "n": 1}

            client.send({"type": "result", "n": 2})
            ident, msg = server.recv(timeout=2)
            assert (ident, msg["n"]) == ("w0", 2)
            client.close()

    def test_send_to_unknown_identity_returns_false(self):
        with MessageServer() as server:
            assert server.send("ghost", {"x": 1}) is False

    def test_broadcast_reaches_all_peers(self):
        with MessageServer() as server:
            clients = [MessageClient(server.host, server.port, identity=f"c{i}") for i in range(3)]
            for _ in range(3):
                server.recv(timeout=2)
            assert server.broadcast({"type": "shutdown"}) == 3
            for c in clients:
                assert c.recv(timeout=2)["type"] == "shutdown"
                c.close()

    def test_peer_lost_notification(self):
        with MessageServer() as server:
            client = MessageClient(server.host, server.port, identity="gone")
            server.recv(timeout=2)  # registration
            client.close()
            ident, msg = server.recv(timeout=2)
            assert ident == "gone"
            assert msg["type"] == "peer_lost"

    def test_connected_peers_listing(self):
        with MessageServer() as server:
            c1 = MessageClient(server.host, server.port, identity="a")
            c2 = MessageClient(server.host, server.port, identity="b")
            server.recv(timeout=2)
            server.recv(timeout=2)
            assert sorted(server.connected_peers()) == ["a", "b"]
            c1.close()
            c2.close()

    def test_client_connect_timeout(self):
        with pytest.raises(ConnectionError):
            MessageClient("127.0.0.1", 1, connect_timeout=0.3, retry_interval=0.05)

    def test_duplicate_identity_evicts_old_connection(self):
        """Re-registering an identity closes the old peer atomically.

        The inbound queue must show: old registration, then the old
        connection's eviction (peer_lost), then the new registration — and
        traffic for the identity must flow over the *new* socket only.
        """
        with MessageServer() as server:
            first = MessageClient(server.host, server.port, identity="dup")
            ident, msg = server.recv(timeout=2)
            assert (ident, msg["type"]) == ("dup", "registration")

            second = MessageClient(server.host, server.port, identity="dup")
            ident, msg = server.recv(timeout=2)
            assert (ident, msg["type"]) == ("dup", "peer_lost")
            assert msg.get("reason") == "superseded"
            ident, msg = server.recv(timeout=2)
            assert (ident, msg["type"]) == ("dup", "registration")

            # Outbound goes to the new connection; the old socket is dead.
            assert server.send("dup", {"type": "probe"})
            assert second.recv(timeout=2) == {"type": "probe"}
            assert first.recv(timeout=2) == {"type": "connection_lost"}

            # Frames from the new connection are attributed to the identity.
            second.send({"type": "data", "v": 1})
            ident, msg = server.recv(timeout=2)
            assert (ident, msg.get("v")) == ("dup", 1)

            # The eviction must not be re-reported when the old reader exits:
            # the only peer_lost left should come from closing the NEW socket.
            second.close()
            ident, msg = server.recv(timeout=2)
            assert (ident, msg["type"]) == ("dup", "peer_lost")
            assert server.recv(timeout=0.3) is None
            first.close()

    def test_reader_threads_pruned_on_churn(self):
        """Churny clients must not leak one Thread object per connection."""
        with MessageServer() as server:
            for i in range(10):
                client = MessageClient(server.host, server.port, identity=f"churn{i}")
                server.recv(timeout=2)  # registration
                client.close()
                server.recv(timeout=2)  # peer_lost
            # One live connection triggers the prune on accept.
            survivor = MessageClient(server.host, server.port, identity="survivor")
            server.recv(timeout=2)
            deadline = time.time() + 5
            while time.time() < deadline and len(server._reader_threads) > 3:
                time.sleep(0.05)
                probe = MessageClient(server.host, server.port, identity="probe")
                server.recv(timeout=2)
                probe.close()
                server.recv(timeout=2)
            assert len(server._reader_threads) <= 3, (
                f"{len(server._reader_threads)} reader threads tracked after churn"
            )
            survivor.close()

    def test_close_reaps_reader_threads(self):
        server = MessageServer()
        clients = [MessageClient(server.host, server.port, identity=f"c{i}") for i in range(4)]
        for _ in range(4):
            server.recv(timeout=2)
        server.close()
        assert server._reader_threads == []
        for c in clients:
            c.close()

    def test_concurrent_clients_roundtrip(self):
        """Many clients sending concurrently all get their own replies."""
        with MessageServer() as server:
            n = 8
            clients = [MessageClient(server.host, server.port, identity=f"w{i}") for i in range(n)]
            for _ in range(n):
                server.recv(timeout=2)

            def echo_loop():
                handled = 0
                while handled < n:
                    got = server.recv(timeout=2)
                    assert got is not None
                    ident, msg = got
                    if msg.get("type") == "ping":
                        server.send(ident, {"type": "pong", "v": msg["v"]})
                        handled += 1

            t = threading.Thread(target=echo_loop, daemon=True)
            t.start()
            for i, c in enumerate(clients):
                c.send({"type": "ping", "v": i})
            for i, c in enumerate(clients):
                assert c.recv(timeout=2) == {"type": "pong", "v": i}
            t.join(timeout=5)
            for c in clients:
                c.close()


class TestInproc:
    def test_roundtrip(self):
        fabric = InprocFabric()
        router = InprocRouter("endpoint-a", fabric=fabric)
        dealer = InprocDealer("endpoint-a", identity="d1", fabric=fabric)
        ident, msg = router.recv(timeout=1)
        assert ident == "d1" and msg["type"] == "registration"
        dealer.send({"hello": 1})
        assert router.recv(timeout=1) == ("d1", {"hello": 1})
        router.send("d1", {"reply": 2})
        assert dealer.recv(timeout=1) == {"reply": 2}
        dealer.close()
        ident, msg = router.recv(timeout=1)
        assert msg["type"] == "peer_lost"
        router.close()

    def test_duplicate_endpoint_rejected(self):
        fabric = InprocFabric()
        InprocRouter("dup", fabric=fabric)
        with pytest.raises(ValueError):
            InprocRouter("dup", fabric=fabric)

    def test_lookup_unknown_endpoint(self):
        fabric = InprocFabric()
        with pytest.raises(ConnectionError):
            InprocDealer("missing", fabric=fabric)

    def test_broadcast(self):
        fabric = InprocFabric()
        router = InprocRouter("bc", fabric=fabric)
        dealers = [InprocDealer("bc", identity=f"d{i}", fabric=fabric) for i in range(4)]
        assert router.broadcast({"type": "stop"}) == 4
        for d in dealers:
            assert d.recv(timeout=1)["type"] == "stop"
        router.close()
