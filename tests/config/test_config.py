"""Tests for the Config object."""

import pytest

from repro.config import Config
from repro.errors import ConfigurationError, DuplicateExecutorLabelError
from repro.executors import HighThroughputExecutor, ThreadPoolExecutor


class TestConfig:
    def test_default_config_gets_thread_executor(self):
        cfg = Config()
        assert cfg.executor_labels == ["threads"]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DuplicateExecutorLabelError):
            Config(executors=[ThreadPoolExecutor(label="x"), ThreadPoolExecutor(label="x")])

    def test_non_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(executors=["not an executor"])

    def test_invalid_checkpoint_mode(self):
        with pytest.raises(ConfigurationError):
            Config(checkpoint_mode="sometimes")

    def test_valid_checkpoint_modes(self):
        for mode in (None, "task_exit", "periodic", "dfk_exit", "manual"):
            assert Config(checkpoint_mode=mode).checkpoint_mode == mode

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(retries=-1)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(strategy="yolo")

    def test_bad_periods_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(strategy_period=0)
        with pytest.raises(ConfigurationError):
            Config(checkpoint_period=-1)

    def test_get_executor(self):
        htex = HighThroughputExecutor(label="h1")
        cfg = Config(executors=[htex])
        assert cfg.get_executor("h1") is htex
        with pytest.raises(ConfigurationError):
            cfg.get_executor("missing")

    def test_multi_site_configuration(self):
        """Multiple executors in one config (the paper's multi-site execution)."""
        cfg = Config(
            executors=[
                HighThroughputExecutor(label="cluster_a"),
                HighThroughputExecutor(label="cluster_b"),
                ThreadPoolExecutor(label="local"),
            ]
        )
        assert sorted(cfg.executor_labels) == ["cluster_a", "cluster_b", "local"]

    def test_repr_mentions_labels(self):
        cfg = Config(executors=[ThreadPoolExecutor(label="tp")], retries=2)
        assert "tp" in repr(cfg) and "retries=2" in repr(cfg)


class TestServiceKnobs:
    def test_defaults(self):
        cfg = Config()
        assert cfg.service_host == "127.0.0.1"
        assert cfg.service_port == 0
        assert cfg.service_max_inflight_per_tenant == 64
        assert cfg.service_window == 128
        assert cfg.service_session_ttl_s == 60.0
        assert cfg.service_replay_limit == 1024
        assert cfg.service_default_weight == 1
        assert cfg.service_tenant_weights == {}

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(service_max_inflight_per_tenant=0)
        with pytest.raises(ConfigurationError):
            Config(service_window=0)
        with pytest.raises(ConfigurationError):
            Config(service_session_ttl_s=0)
        with pytest.raises(ConfigurationError):
            Config(service_replay_limit=0)
        with pytest.raises(ConfigurationError):
            Config(service_default_weight=0)
        with pytest.raises(ConfigurationError):
            Config(service_tenant_weights={"alice": 0})
        with pytest.raises(ConfigurationError):
            Config(service_tenant_weights={"alice": 1.5})

    def test_tenant_weights_copied(self):
        weights = {"alice": 3}
        cfg = Config(service_tenant_weights=weights)
        weights["alice"] = 99
        assert cfg.service_tenant_weights == {"alice": 3}

    def test_store_and_shard_defaults(self):
        cfg = Config()
        assert cfg.service_store_path is None
        assert cfg.service_store_flush_ms == 2.0
        assert cfg.service_shard_vnodes == 64
        assert cfg.service_shard_spillover == 2.0

    def test_store_and_shard_validation(self):
        with pytest.raises(ConfigurationError):
            Config(service_store_flush_ms=-1.0)
        with pytest.raises(ConfigurationError):
            Config(service_shard_vnodes=0)
        with pytest.raises(ConfigurationError):
            Config(service_shard_spillover=0.5)
        cfg = Config(service_store_path="/tmp/sessions.db", service_store_flush_ms=0.0)
        assert cfg.service_store_path == "/tmp/sessions.db"
        assert cfg.service_store_flush_ms == 0.0
