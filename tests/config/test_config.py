"""Tests for the Config object."""

import pytest

from repro.config import Config
from repro.errors import ConfigurationError, DuplicateExecutorLabelError
from repro.executors import HighThroughputExecutor, ThreadPoolExecutor


class TestConfig:
    def test_default_config_gets_thread_executor(self):
        cfg = Config()
        assert cfg.executor_labels == ["threads"]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DuplicateExecutorLabelError):
            Config(executors=[ThreadPoolExecutor(label="x"), ThreadPoolExecutor(label="x")])

    def test_non_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(executors=["not an executor"])

    def test_invalid_checkpoint_mode(self):
        with pytest.raises(ConfigurationError):
            Config(checkpoint_mode="sometimes")

    def test_valid_checkpoint_modes(self):
        for mode in (None, "task_exit", "periodic", "dfk_exit", "manual"):
            assert Config(checkpoint_mode=mode).checkpoint_mode == mode

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(retries=-1)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(strategy="yolo")

    def test_bad_periods_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(strategy_period=0)
        with pytest.raises(ConfigurationError):
            Config(checkpoint_period=-1)

    def test_get_executor(self):
        htex = HighThroughputExecutor(label="h1")
        cfg = Config(executors=[htex])
        assert cfg.get_executor("h1") is htex
        with pytest.raises(ConfigurationError):
            cfg.get_executor("missing")

    def test_multi_site_configuration(self):
        """Multiple executors in one config (the paper's multi-site execution)."""
        cfg = Config(
            executors=[
                HighThroughputExecutor(label="cluster_a"),
                HighThroughputExecutor(label="cluster_b"),
                ThreadPoolExecutor(label="local"),
            ]
        )
        assert sorted(cfg.executor_labels) == ["cluster_a", "cluster_b", "local"]

    def test_repr_mentions_labels(self):
        cfg = Config(executors=[ThreadPoolExecutor(label="tp")], retries=2)
        assert "tp" in repr(cfg) and "retries=2" in repr(cfg)
