"""Shared pytest fixtures.

The heavyweight fixture here is ``local_dfk``: a DataFlowKernel backed by an
internal-mode HighThroughputExecutor (real interchange + manager + thread
workers, all in-process) plus a ThreadPoolExecutor, which most integration
tests use. Executor start-up costs a few hundred milliseconds, so the
fixture is module-scoped where possible and every test that loads its own
DFK must clear the loader afterwards (enforced by ``_loader_guard``).
"""

from __future__ import annotations

import pytest

import repro
from repro import Config
from repro.core.dflow import DataFlowKernelLoader
from repro.executors import HighThroughputExecutor, ThreadPoolExecutor


@pytest.fixture(autouse=True)
def _loader_guard():
    """Guarantee no DataFlowKernel leaks between tests."""
    yield
    if DataFlowKernelLoader._dfk is not None:
        try:
            DataFlowKernelLoader.clear()
        except Exception:
            DataFlowKernelLoader._dfk = None


@pytest.fixture
def run_dir(tmp_path):
    d = tmp_path / "runinfo"
    d.mkdir(exist_ok=True)
    return str(d)


def make_local_config(run_dir: str, **overrides) -> Config:
    """A fast, fully local configuration used across integration tests."""
    defaults = dict(
        executors=[
            HighThroughputExecutor(label="htex_local", workers_per_node=4, internal_managers=1),
            ThreadPoolExecutor(label="threads", max_threads=2),
        ],
        retries=0,
        run_dir=run_dir,
        strategy="none",
    )
    defaults.update(overrides)
    return Config(**defaults)


@pytest.fixture
def local_dfk(run_dir):
    """A loaded DataFlowKernel with an internal HTEX and a thread pool."""
    dfk = repro.load(make_local_config(run_dir))
    yield dfk
    repro.clear()


@pytest.fixture
def threads_dfk(run_dir):
    """A minimal thread-pool-only DataFlowKernel (fastest startup)."""
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=4)],
        run_dir=run_dir,
        strategy="none",
    )
    dfk = repro.load(cfg)
    yield dfk
    repro.clear()
