"""Shared pytest fixtures.

The heavyweight fixture here is ``local_dfk``: a DataFlowKernel backed by an
internal-mode HighThroughputExecutor (real interchange + manager + thread
workers, all in-process) plus a ThreadPoolExecutor, which most integration
tests use. Executor start-up costs a few hundred milliseconds, so the
fixture is module-scoped where possible and every test that loads its own
DFK must clear the loader afterwards (enforced by ``_loader_guard``).
"""

from __future__ import annotations

import re

import pytest

import repro
from repro import Config
from repro.core.dflow import DataFlowKernelLoader
from repro.executors import HighThroughputExecutor, ThreadPoolExecutor


@pytest.fixture(autouse=True)
def _loader_guard():
    """Guarantee no DataFlowKernel leaks between tests."""
    yield
    if DataFlowKernelLoader._dfk is not None:
        try:
            DataFlowKernelLoader.clear()
        except Exception:
            DataFlowKernelLoader._dfk = None


@pytest.fixture
def run_dir(tmp_path):
    d = tmp_path / "runinfo"
    d.mkdir(exist_ok=True)
    return str(d)


def make_local_config(run_dir: str, **overrides) -> Config:
    """A fast, fully local configuration used across integration tests."""
    defaults = dict(
        executors=[
            HighThroughputExecutor(label="htex_local", workers_per_node=4, internal_managers=1),
            ThreadPoolExecutor(label="threads", max_threads=2),
        ],
        retries=0,
        run_dir=run_dir,
        strategy="none",
    )
    defaults.update(overrides)
    return Config(**defaults)


@pytest.fixture
def local_dfk(run_dir):
    """A loaded DataFlowKernel with an internal HTEX and a thread pool."""
    dfk = repro.load(make_local_config(run_dir))
    yield dfk
    repro.clear()


@pytest.fixture
def threads_dfk(run_dir):
    """A minimal thread-pool-only DataFlowKernel (fastest startup)."""
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=4)],
        run_dir=run_dir,
        strategy="none",
    )
    dfk = repro.load(cfg)
    yield dfk
    repro.clear()


# ---------------------------------------------------------------------------
# Prometheus text-format (version 0.0.4) validation, shared by the metrics
# unit tests and the HTTP edge's /metrics endpoint tests.
# ---------------------------------------------------------------------------

_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_LABEL = r"[a-zA-Z_][a-zA-Z0-9_]*"
_PROM_SAMPLE = re.compile(
    rf"^({_PROM_NAME})"
    rf"(\{{{_PROM_LABEL}=\"(?:[^\"\\\n]|\\[\\\"n])*\""
    rf"(?:,{_PROM_LABEL}=\"(?:[^\"\\\n]|\\[\\\"n])*\")*\}})?"
    r" (-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf)|\+Inf|NaN)"
    r"( -?\d+)?$"
)
_PROM_COMMENT = re.compile(rf"^# (HELP|TYPE) ({_PROM_NAME})(?: (.*))?$")
_PROM_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _strip_le(labels: str) -> str:
    """Drop the ``le`` pair from a rendered label block, keeping the rest."""
    rest = re.sub(r'le="[^"]*",?', "", labels).replace(",}", "}")
    return "" if rest == "{}" else rest


def validate_prometheus_text(text: str) -> None:
    """Assert ``text`` parses as Prometheus exposition format 0.0.4.

    Checks the line grammar (HELP/TYPE comments, sample lines with quoted
    escaped label values, float values), that TYPE appears at most once per
    family and before its samples, and histogram invariants: cumulative
    ``_bucket`` counts are non-decreasing in ``le`` order and the ``+Inf``
    bucket equals ``_count``. Raises ``AssertionError`` with the offending
    line on any violation.
    """
    typed: dict = {}
    seen_samples: set = set()
    buckets: dict = {}  # family -> {labelset-minus-le: [(le, value)]}
    counts: dict = {}  # family -> {labelset: value}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            m = _PROM_COMMENT.match(line)
            assert m, f"malformed comment line: {line!r}"
            if m.group(1) == "TYPE":
                name = m.group(2)
                assert name not in typed, f"duplicate TYPE for {name}"
                assert m.group(3) in _PROM_TYPES, f"bad type in: {line!r}"
                assert not any(s.startswith(name) for s in seen_samples), (
                    f"TYPE for {name} after its samples"
                )
                typed[name] = m.group(3)
            continue
        m = _PROM_SAMPLE.match(line)
        assert m, f"malformed sample line: {line!r}"
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        seen_samples.add(name)
        if name.endswith("_bucket") and typed.get(name[:-7]) == "histogram":
            le = re.search(r'le="([^"]*)"', labels)
            assert le, f"histogram bucket without le label: {line!r}"
            family_buckets = buckets.setdefault(name[:-7], {})
            family_buckets.setdefault(_strip_le(labels), []).append(
                (le.group(1), float(value))
            )
        elif name.endswith("_count") and typed.get(name[:-6]) == "histogram":
            counts.setdefault(name[:-6], {})[labels] = float(value)
    for family, by_labels in buckets.items():
        for rest, entries in by_labels.items():
            values = [v for _le, v in entries]
            assert values == sorted(values), (
                f"{family}{rest}: bucket counts not cumulative: {entries}"
            )
            by_le = dict(entries)
            assert "+Inf" in by_le, f"{family}{rest}: no +Inf bucket"
            count = counts.get(family, {}).get(rest)
            assert count is not None and by_le["+Inf"] == count, (
                f"{family}{rest}: +Inf bucket {by_le['+Inf']} != count {count}"
            )


@pytest.fixture
def prom_validator():
    """The Prometheus text-format validator, as a fixture both the metrics
    unit tests and the service-layer scrape tests share."""
    return validate_prometheus_text
