"""Regression tests for DataFlowKernel.cleanup() ordering.

The elasticity engine runs on a timer thread; cleanup() must stop (and join)
that thread *before* executors shut down, otherwise a strategize round racing
teardown can scale out fresh blocks that nobody will ever cancel.
"""

from repro import Config
from repro.core.dflow import DataFlowKernel
from repro.executors import ThreadPoolExecutor


def test_cleanup_stops_strategy_timer_before_executor_shutdown(run_dir):
    events = []
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
        run_dir=run_dir,
        strategy="simple",
        strategy_period=0.05,
    )
    dfk = DataFlowKernel(cfg)
    executor = dfk.executors["threads"]

    orig_close = dfk._strategy_timer.close
    orig_shutdown = executor.shutdown

    def tracked_close():
        events.append("strategy-close")
        orig_close()

    def tracked_shutdown(block=True):
        events.append("executor-shutdown")
        orig_shutdown(block)

    dfk._strategy_timer.close = tracked_close
    executor.shutdown = tracked_shutdown

    dfk.cleanup()

    assert "strategy-close" in events and "executor-shutdown" in events
    assert events.index("strategy-close") < events.index("executor-shutdown")
    # close() joins the timer thread, so by the time executors shut down no
    # strategize round can still be in flight.
    assert not dfk._strategy_timer._thread.is_alive()


def test_no_scaling_actions_after_cleanup(run_dir):
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
        run_dir=run_dir,
        strategy="simple",
        strategy_period=0.05,
    )
    dfk = DataFlowKernel(cfg)
    dfk.cleanup()
    before = list(dfk.strategy.history)
    import time

    time.sleep(0.2)  # several strategy periods
    assert dfk.strategy.history == before
