"""Regression tests for DataFlowKernel.cleanup() ordering.

The elasticity engine runs on a timer thread; cleanup() must stop (and join)
that thread *before* executors shut down, otherwise a strategize round racing
teardown can scale out fresh blocks that nobody will ever cancel. Retry
backoff timers are similarly tracked: cleanup() cancels pending ones and
fails their tasks fast, so no AppFuture is left unresolved by a timer firing
into a dead dispatcher.
"""

import time
from concurrent.futures import CancelledError

import pytest

from repro import Config
from repro.core.dflow import DataFlowKernel
from repro.executors import ThreadPoolExecutor


def test_cleanup_stops_strategy_timer_before_executor_shutdown(run_dir):
    events = []
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
        run_dir=run_dir,
        strategy="simple",
        strategy_period=0.05,
    )
    dfk = DataFlowKernel(cfg)
    executor = dfk.executors["threads"]

    orig_close = dfk._strategy_timer.close
    orig_shutdown = executor.shutdown

    def tracked_close():
        events.append("strategy-close")
        orig_close()

    def tracked_shutdown(block=True):
        events.append("executor-shutdown")
        orig_shutdown(block)

    dfk._strategy_timer.close = tracked_close
    executor.shutdown = tracked_shutdown

    dfk.cleanup()

    assert "strategy-close" in events and "executor-shutdown" in events
    assert events.index("strategy-close") < events.index("executor-shutdown")
    # close() joins the timer thread, so by the time executors shut down no
    # strategize round can still be in flight.
    assert not dfk._strategy_timer._thread.is_alive()


def test_no_scaling_actions_after_cleanup(run_dir):
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
        run_dir=run_dir,
        strategy="simple",
        strategy_period=0.05,
    )
    dfk = DataFlowKernel(cfg)
    dfk.cleanup()
    before = list(dfk.strategy.history)

    time.sleep(0.2)  # several strategy periods
    assert dfk.strategy.history == before


def _always_fails():
    raise RuntimeError("boom")


class TestRetryTimerCleanup:
    def test_pending_backoff_timer_cancelled_and_task_failed_fast(self, run_dir):
        """cleanup() during a retry backoff must resolve the AppFuture now.

        Before timers were tracked, cleanup() could complete while a backoff
        timer was still pending; the timer then enqueued into the dead
        dispatcher and the task's AppFuture never resolved.
        """
        cfg = Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
            run_dir=run_dir,
            retries=1,
            retry_backoff_s=30.0,  # far longer than the test: the timer must be cancelled, not waited out
            strategy="none",
        )
        dfk = DataFlowKernel(cfg)
        fut = dfk.submit(_always_fails)
        # Wait for the first failure to schedule its backoff timer.
        deadline = time.time() + 10
        while not dfk._retry_timers and time.time() < deadline:
            time.sleep(0.01)
        assert dfk._retry_timers, "retry backoff timer was never scheduled"

        start = time.time()
        dfk.cleanup()
        assert fut.done(), "AppFuture left unresolved by cleanup() during retry backoff"
        assert time.time() - start < 10  # did not sit out the 30 s backoff
        with pytest.raises(CancelledError):
            fut.result(timeout=0)
        assert not dfk._retry_timers

    def test_fired_timer_after_cleanup_still_resolves_future(self, run_dir):
        """A timer that fires concurrently with shutdown fail-fasts via the
        dispatcher guard rather than stranding the task."""
        cfg = Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
            run_dir=run_dir,
            retries=1,
            retry_backoff_s=0.05,
            strategy="none",
        )
        dfk = DataFlowKernel(cfg)
        fut = dfk.submit(_always_fails)
        # Catch the kernel in (or just past) the backoff window; the timer
        # may already have fired and settled the retry, which is fine — the
        # point is that no interleaving strands the future.
        deadline = time.time() + 1.0
        while not dfk._retry_timers and not fut.done() and time.time() < deadline:
            time.sleep(0.005)
        dfk.cleanup()
        # Whichever side won the race (timer fired vs cleanup cancelled),
        # the future must resolve.
        assert fut.done()
        assert fut.exception(timeout=0) is not None
