"""Tests for AppFuture / DataFuture and task states."""

import pytest

from repro.core.futures import AppFuture, DataFuture
from repro.core.states import FINAL_FAILURE_STATES, FINAL_STATES, States
from repro.core.taskrecord import TaskRecord
from repro.data.files import File


def make_record(task_id=0):
    return TaskRecord(id=task_id, func=lambda: None, func_name="noop")


class TestAppFuture:
    def test_single_update(self):
        fut = AppFuture(make_record(3))
        fut.set_result(10)
        assert fut.result() == 10
        assert fut.tid == 3
        assert fut.task_status() == "unsched"

    def test_outputs_registry(self):
        fut = AppFuture(make_record(1))
        df = DataFuture(fut, File("/tmp/out.txt"), tid=1)
        fut.add_output(df)
        assert fut.outputs == [df]

    def test_repr_states(self):
        fut = AppFuture(make_record(2))
        assert "pending" in repr(fut)
        fut.set_result(None)
        assert "done" in repr(fut)


class TestDataFuture:
    def test_resolves_with_parent(self):
        app_fu = AppFuture(make_record(5))
        data_fu = DataFuture(app_fu, File("/tmp/x.dat"), tid=5)
        assert not data_fu.done()
        app_fu.set_result(0)
        assert data_fu.result(timeout=1).url == "/tmp/x.dat"
        assert data_fu.filename == "x.dat"

    def test_propagates_parent_failure(self):
        app_fu = AppFuture(make_record(6))
        data_fu = DataFuture(app_fu, File("/tmp/y.dat"))
        app_fu.set_exception(RuntimeError("producer failed"))
        with pytest.raises(RuntimeError):
            data_fu.result(timeout=1)

    def test_requires_file(self):
        app_fu = AppFuture(make_record(7))
        with pytest.raises(TypeError):
            DataFuture(app_fu, "/plain/string.txt")

    def test_cannot_cancel_independently(self):
        app_fu = AppFuture(make_record(8))
        data_fu = DataFuture(app_fu, File("/tmp/z.dat"))
        assert data_fu.cancel() is False


class TestStates:
    def test_final_states_partition(self):
        assert States.exec_done in FINAL_STATES
        assert States.memo_done in FINAL_STATES
        assert States.failed in FINAL_FAILURE_STATES
        assert States.pending not in FINAL_STATES
        assert FINAL_FAILURE_STATES <= FINAL_STATES

    def test_str(self):
        assert str(States.launched) == "launched"

    def test_task_record_summary(self):
        record = make_record(9)
        record.status = States.running
        summary = record.summary()
        assert summary["task_id"] == 9
        assert summary["status"] == "running"


class TestCompletionHooksAndTags:
    """DFK task tagging and completion fan-out (the gateway's feed)."""

    def test_hook_fires_on_success_and_failure(self, threads_dfk):
        import threading

        seen = []
        fired = threading.Event()

        def hook(task, state):
            seen.append((task.id, task.tag, state.name))
            if len(seen) >= 2:
                fired.set()

        threads_dfk.add_completion_hook(hook)
        try:
            ok = threads_dfk.submit(lambda: 42, tag="tenant-a")
            assert ok.result(timeout=10) == 42

            def boom():
                raise RuntimeError("nope")

            bad = threads_dfk.submit(boom, tag="tenant-b")
            with pytest.raises(RuntimeError):
                bad.result(timeout=10)
            assert fired.wait(timeout=10)
        finally:
            threads_dfk.remove_completion_hook(hook)
        by_id = {tid: (tag, state) for tid, tag, state in seen}
        assert by_id[ok.tid] == ("tenant-a", "exec_done")
        assert by_id[bad.tid] == ("tenant-b", "failed")

    def test_hook_sees_resolved_app_future(self, threads_dfk):
        import threading

        resolved = []
        fired = threading.Event()

        def hook(task, state):
            resolved.append(task.app_fu.done())
            fired.set()

        threads_dfk.add_completion_hook(hook)
        try:
            assert threads_dfk.submit(lambda: "x").result(timeout=10) == "x"
            assert fired.wait(timeout=10)
        finally:
            threads_dfk.remove_completion_hook(hook)
        assert resolved == [True]

    def test_raising_hook_does_not_break_completion(self, threads_dfk):
        def angry_hook(task, state):
            raise RuntimeError("hook bug")

        threads_dfk.add_completion_hook(angry_hook)
        try:
            assert threads_dfk.submit(lambda: 7).result(timeout=10) == 7
        finally:
            threads_dfk.remove_completion_hook(angry_hook)

    def test_tag_survives_retirement(self, threads_dfk):
        future = threads_dfk.submit(lambda: 1, tag="tenant-z")
        assert future.result(timeout=10) == 1
        task = threads_dfk.tasks[future.tid]
        # Record is retired by default; the tag is a scalar and must remain.
        assert task.tag == "tenant-z"
