"""Tests for memoization hashing and checkpointing."""

from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import (
    get_all_checkpoints,
    load_checkpoints,
    write_checkpoint,
)
from repro.core.memoization import Memoizer, _MemoHit, make_hash
from repro.core.taskrecord import TaskRecord


def func_a(x):
    return x + 1


def func_b(x):
    return x + 2


def record(func=func_a, args=(), kwargs=None, memoize=True, task_id=0):
    return TaskRecord(
        id=task_id,
        func=func,
        func_name=func.__name__,
        args=tuple(args),
        kwargs=dict(kwargs or {}),
        memoize=memoize,
    )


class TestHashing:
    def test_same_call_same_hash(self):
        assert make_hash(record(args=(1,))) == make_hash(record(args=(1,)))

    def test_different_args_different_hash(self):
        assert make_hash(record(args=(1,))) != make_hash(record(args=(2,)))

    def test_different_function_different_hash(self):
        assert make_hash(record(func=func_a, args=(1,))) != make_hash(record(func=func_b, args=(1,)))

    def test_kwarg_order_irrelevant(self):
        h1 = make_hash(record(kwargs={"a": 1, "b": 2}))
        h2 = make_hash(record(kwargs={"b": 2, "a": 1}))
        assert h1 == h2

    def test_stdout_stderr_ignored(self):
        h1 = make_hash(record(kwargs={"stdout": "a.txt"}))
        h2 = make_hash(record(kwargs={"stdout": "b.txt"}))
        assert h1 == h2

    @given(st.lists(st.integers(), max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_hash_deterministic_property(self, args):
        assert make_hash(record(args=tuple(args))) == make_hash(record(args=tuple(args)))


class TestMemoizer:
    def test_miss_then_hit(self):
        memo = Memoizer(enabled=True)
        task = record(args=(5,))
        assert memo.check(task) is None
        memo.update(task, 6)
        hit = memo.check(record(args=(5,)))
        assert isinstance(hit, _MemoHit)
        assert hit.result == 6
        assert memo.hits == 1 and memo.misses == 2 - 1

    def test_hit_with_none_result_distinguished_from_miss(self):
        memo = Memoizer(enabled=True)
        task = record(args=("x",))
        memo.update(task, None)
        hit = memo.check(record(args=("x",)))
        assert isinstance(hit, _MemoHit) and hit.result is None

    def test_disabled_memoizer_never_hits(self):
        memo = Memoizer(enabled=False)
        task = record(args=(1,))
        memo.update(task, 2)
        assert memo.check(task) is None

    def test_per_task_opt_out(self):
        memo = Memoizer(enabled=True)
        task = record(args=(1,), memoize=False)
        memo.update(task, 2)
        assert memo.check(task) is None

    def test_staging_tasks_never_memoized(self):
        memo = Memoizer(enabled=True)
        task = record(args=(1,))
        task.is_staging = True
        memo.update(task, 2)
        assert memo.check(task) is None

    def test_load_table(self):
        memo = Memoizer(enabled=True)
        added = memo.load_table({"abc": 1, "def": 2})
        assert added == 2
        assert len(memo) == 2


class TestCheckpointing:
    def test_write_and_load(self, tmp_path):
        run_dir = str(tmp_path / "run1")
        path = write_checkpoint(run_dir, {"h1": 10, "h2": 20})
        assert path.endswith("tasks.pkl")
        loaded = load_checkpoints([run_dir])
        assert loaded == {"h1": 10, "h2": 20}
        # Loading by explicit file path and by checkpoint dir also work.
        assert load_checkpoints([path]) == loaded
        assert load_checkpoints([run_dir + "/checkpoint"]) == loaded

    def test_load_missing_sources(self, tmp_path):
        assert load_checkpoints([str(tmp_path / "nope")]) == {}
        assert load_checkpoints(None) == {}

    def test_merge_multiple_checkpoints(self, tmp_path):
        run1, run2 = str(tmp_path / "r1"), str(tmp_path / "r2")
        write_checkpoint(run1, {"a": 1})
        write_checkpoint(run2, {"b": 2})
        assert load_checkpoints([run1, run2]) == {"a": 1, "b": 2}

    def test_get_all_checkpoints(self, tmp_path):
        base = tmp_path / "runinfo"
        for name in ("run-a", "run-b"):
            write_checkpoint(str(base / name), {name: 1})
        found = get_all_checkpoints(str(base))
        assert len(found) == 2

    def test_corrupt_checkpoint_ignored(self, tmp_path):
        run_dir = tmp_path / "bad"
        cp = run_dir / "checkpoint"
        cp.mkdir(parents=True)
        (cp / "tasks.pkl").write_bytes(b"not a pickle")
        assert load_checkpoints([str(run_dir)]) == {}

    def test_memoizer_seeded_from_checkpoint(self, tmp_path):
        task = record(args=(3,))
        first = Memoizer(enabled=True)
        first.update(task, 99)
        run_dir = str(tmp_path / "seed")
        write_checkpoint(run_dir, first.table_snapshot())
        second = Memoizer(enabled=True, seed_table=load_checkpoints([run_dir]))
        hit = second.check(record(args=(3,)))
        assert isinstance(hit, _MemoHit) and hit.result == 99
