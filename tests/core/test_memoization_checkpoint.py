"""Tests for memoization hashing and checkpointing."""

import os
import pickle

from hypothesis import given, settings, strategies as st

from repro.core import memoization
from repro.core.checkpoint import (
    append_checkpoint,
    get_all_checkpoints,
    load_checkpoints,
    write_checkpoint,
)
from repro.core.memoization import (
    Memoizer,
    _MemoHit,
    _seeded_hasher_uncached,
    clear_seed_cache,
    make_hash,
)
from repro.core.taskrecord import TaskRecord


def func_a(x):
    return x + 1


def func_b(x):
    return x + 2


def record(func=func_a, args=(), kwargs=None, memoize=True, task_id=0):
    return TaskRecord(
        id=task_id,
        func=func,
        func_name=func.__name__,
        args=tuple(args),
        kwargs=dict(kwargs or {}),
        memoize=memoize,
    )


class TestHashing:
    def test_same_call_same_hash(self):
        assert make_hash(record(args=(1,))) == make_hash(record(args=(1,)))

    def test_different_args_different_hash(self):
        assert make_hash(record(args=(1,))) != make_hash(record(args=(2,)))

    def test_different_function_different_hash(self):
        assert make_hash(record(func=func_a, args=(1,))) != make_hash(record(func=func_b, args=(1,)))

    def test_kwarg_order_irrelevant(self):
        h1 = make_hash(record(kwargs={"a": 1, "b": 2}))
        h2 = make_hash(record(kwargs={"b": 2, "a": 1}))
        assert h1 == h2

    def test_stdout_stderr_ignored(self):
        h1 = make_hash(record(kwargs={"stdout": "a.txt"}))
        h2 = make_hash(record(kwargs={"stdout": "b.txt"}))
        assert h1 == h2

    @given(st.lists(st.integers(), max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_hash_deterministic_property(self, args):
        assert make_hash(record(args=tuple(args))) == make_hash(record(args=tuple(args)))

    @given(st.permutations(["alpha", "beta", "gamma", "delta"]))
    @settings(max_examples=24, deadline=None)
    def test_kwarg_insertion_order_never_changes_hash(self, key_order):
        """Kwargs are folded in sorted-key order, so any insertion order of
        the same bindings hashes identically (dict-ordering stability)."""
        canonical = {"alpha": 1, "beta": [2], "gamma": "g", "delta": None}
        permuted = {key: canonical[key] for key in key_order}
        assert make_hash(record(kwargs=permuted)) == make_hash(record(kwargs=canonical))

    def test_cached_seed_matches_uncached_baseline(self, monkeypatch):
        """The per-callable seed cache is a pure fast path: digests must be
        byte-identical to the re-read-the-source baseline."""
        clear_seed_cache()
        cached_cold = make_hash(record(args=(1, "x")))
        cached_warm = make_hash(record(args=(1, "x")))
        monkeypatch.setattr(memoization, "_seeded_hasher", _seeded_hasher_uncached)
        uncached = make_hash(record(args=(1, "x")))
        assert cached_cold == cached_warm == uncached

    def test_seed_cache_distinguishes_functions_and_names(self):
        clear_seed_cache()
        h_a = make_hash(record(func=func_a, args=(1,)))
        h_b = make_hash(record(func=func_b, args=(1,)))
        assert h_a != h_b
        renamed = record(func=func_a, args=(1,))
        renamed.func_name = "alias"
        assert make_hash(renamed) != h_a

    def test_uncacheable_callable_still_hashes(self):
        # Builtins cannot be weak-referenced; hashing must fall back cleanly.
        task = TaskRecord(id=0, func=len, func_name="len", args=((1, 2),))
        assert make_hash(task) == make_hash(TaskRecord(id=1, func=len, func_name="len", args=((1, 2),)))

    def test_stable_bytes_uses_highest_protocol(self):
        assert memoization.PICKLE_PROTOCOL == pickle.HIGHEST_PROTOCOL
        assert memoization._stable_bytes((1, "a")) == pickle.dumps(
            (1, "a"), protocol=pickle.HIGHEST_PROTOCOL
        )


class TestMemoizer:
    def test_miss_then_hit(self):
        memo = Memoizer(enabled=True)
        task = record(args=(5,))
        assert memo.check(task) is None
        memo.update(task, 6)
        hit = memo.check(record(args=(5,)))
        assert isinstance(hit, _MemoHit)
        assert hit.result == 6
        assert memo.hits == 1 and memo.misses == 2 - 1

    def test_hit_with_none_result_distinguished_from_miss(self):
        memo = Memoizer(enabled=True)
        task = record(args=("x",))
        memo.update(task, None)
        hit = memo.check(record(args=("x",)))
        assert isinstance(hit, _MemoHit) and hit.result is None

    def test_disabled_memoizer_never_hits(self):
        memo = Memoizer(enabled=False)
        task = record(args=(1,))
        memo.update(task, 2)
        assert memo.check(task) is None

    def test_per_task_opt_out(self):
        memo = Memoizer(enabled=True)
        task = record(args=(1,), memoize=False)
        memo.update(task, 2)
        assert memo.check(task) is None

    def test_staging_tasks_never_memoized(self):
        memo = Memoizer(enabled=True)
        task = record(args=(1,))
        task.is_staging = True
        memo.update(task, 2)
        assert memo.check(task) is None

    def test_load_table(self):
        memo = Memoizer(enabled=True)
        added = memo.load_table({"abc": 1, "def": 2})
        assert added == 2
        assert len(memo) == 2


class TestCheckpointing:
    def test_write_and_load(self, tmp_path):
        run_dir = str(tmp_path / "run1")
        path = write_checkpoint(run_dir, {"h1": 10, "h2": 20})
        assert path.endswith("tasks.pkl")
        loaded = load_checkpoints([run_dir])
        assert loaded == {"h1": 10, "h2": 20}
        # Loading by explicit file path and by checkpoint dir also work.
        assert load_checkpoints([path]) == loaded
        assert load_checkpoints([run_dir + "/checkpoint"]) == loaded

    def test_load_missing_sources(self, tmp_path):
        assert load_checkpoints([str(tmp_path / "nope")]) == {}
        assert load_checkpoints(None) == {}

    def test_merge_multiple_checkpoints(self, tmp_path):
        run1, run2 = str(tmp_path / "r1"), str(tmp_path / "r2")
        write_checkpoint(run1, {"a": 1})
        write_checkpoint(run2, {"b": 2})
        assert load_checkpoints([run1, run2]) == {"a": 1, "b": 2}

    def test_get_all_checkpoints(self, tmp_path):
        base = tmp_path / "runinfo"
        for name in ("run-a", "run-b"):
            write_checkpoint(str(base / name), {name: 1})
        found = get_all_checkpoints(str(base))
        assert len(found) == 2

    def test_corrupt_checkpoint_ignored(self, tmp_path):
        run_dir = tmp_path / "bad"
        cp = run_dir / "checkpoint"
        cp.mkdir(parents=True)
        (cp / "tasks.pkl").write_bytes(b"not a pickle")
        assert load_checkpoints([str(run_dir)]) == {}

    def test_memoizer_seeded_from_checkpoint(self, tmp_path):
        task = record(args=(3,))
        first = Memoizer(enabled=True)
        first.update(task, 99)
        run_dir = str(tmp_path / "seed")
        write_checkpoint(run_dir, first.table_snapshot())
        second = Memoizer(enabled=True, seed_table=load_checkpoints([run_dir]))
        hit = second.check(record(args=(3,)))
        assert isinstance(hit, _MemoHit) and hit.result == 99


class TestIncrementalCheckpointing:
    def test_append_then_load_merges_with_snapshot(self, tmp_path):
        run_dir = str(tmp_path / "run")
        write_checkpoint(run_dir, {"h1": 1})
        append_checkpoint(run_dir, {"h2": 2})
        append_checkpoint(run_dir, {"h3": 3, "h1": 10})  # delta overrides snapshot
        assert load_checkpoints([run_dir]) == {"h1": 10, "h2": 2, "h3": 3}

    def test_delta_only_run_is_loadable(self, tmp_path):
        run_dir = str(tmp_path / "run")
        append_checkpoint(run_dir, {"a": 1})
        append_checkpoint(run_dir, {"b": 2})
        assert load_checkpoints([run_dir]) == {"a": 1, "b": 2}

    def test_empty_delta_is_noop(self, tmp_path):
        run_dir = str(tmp_path / "run")
        assert append_checkpoint(run_dir, {}) is None

    def test_append_writes_o_delta_bytes(self, tmp_path):
        """The Nth single-entry append must cost about as many bytes as the
        first — O(delta), never O(N)."""
        run_dir = str(tmp_path / "run")
        path = append_checkpoint(run_dir, {"h0": 0})
        first_size = os.path.getsize(path)
        sizes = []
        for i in range(1, 40):
            append_checkpoint(run_dir, {f"h{i}": i})
            sizes.append(os.path.getsize(path))
        growths = [b - a for a, b in zip([first_size] + sizes, sizes)]
        assert max(growths) <= 4 * first_size
        assert load_checkpoints([run_dir]) == {f"h{i}": i for i in range(40)}

    def test_full_snapshot_supersedes_delta(self, tmp_path):
        run_dir = str(tmp_path / "run")
        append_checkpoint(run_dir, {"stale": 1})
        delta_path = os.path.join(run_dir, "checkpoint", "tasks.delta.pkl")
        assert os.path.exists(delta_path)
        write_checkpoint(run_dir, {"fresh": 2})
        assert not os.path.exists(delta_path)
        assert load_checkpoints([run_dir]) == {"fresh": 2}

    def test_truncated_delta_tail_is_tolerated(self, tmp_path):
        run_dir = str(tmp_path / "run")
        append_checkpoint(run_dir, {"good": 1})
        delta_path = os.path.join(run_dir, "checkpoint", "tasks.delta.pkl")
        with open(delta_path, "ab") as fh:
            fh.write(b"\x80\x05partial-crash-garbage")
        assert load_checkpoints([run_dir]) == {"good": 1}

    def test_memoizer_checkpoint_delta_drains(self):
        memo = Memoizer(enabled=True)
        memo.update(record(args=(1,), task_id=1), 2)
        memo.update(record(args=(2,), task_id=2), 3)
        delta = memo.checkpoint_delta()
        assert len(delta) == 2
        assert memo.checkpoint_delta() == {}
        memo.update(record(args=(3,), task_id=3), 4)
        assert len(memo.checkpoint_delta()) == 1

    def test_track_dirty_off_skips_delta_accounting(self):
        # Runs that never checkpoint (the default Config) must not grow a
        # shadow dict of every memoized result.
        memo = Memoizer(enabled=True, track_dirty=False)
        memo.update(record(args=(1,)), 2)
        assert memo.checkpoint_delta() == {}
        assert len(memo) == 1  # the table itself still memoizes

    def test_restore_delta_after_failed_append(self):
        """A drained delta whose append failed must reappear in the next
        drain, without clobbering entries re-dirtied in the meantime."""
        memo = Memoizer(enabled=True)
        task = record(args=(1,), task_id=1)
        memo.update(task, "old")
        drained = memo.checkpoint_delta()
        memo.update(task, "new")  # re-dirtied while the append was failing
        memo.restore_delta(drained)
        assert memo.checkpoint_delta() == {task.hashsum: "new"}
        memo.restore_delta({"other": 5})
        assert memo.checkpoint_delta() == {"other": 5}

    def test_snapshot_covers_drained_delta(self):
        # The DFK's full-checkpoint sequence: drain first, snapshot second —
        # the snapshot must include every drained entry.
        memo = Memoizer(enabled=True)
        memo.update(record(args=(1,)), 2)
        drained = memo.checkpoint_delta()
        snapshot = memo.table_snapshot()
        assert set(drained) <= set(snapshot)
        assert memo.checkpoint_delta() == {}
