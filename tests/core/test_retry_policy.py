"""Unit tests for RetryPolicy: classification, backoff shape, Config wiring."""

import random

import pytest

import repro
from repro import Config, RetryPolicy
from repro.apps.app import python_app
from repro.core import retry as retry_mod
from repro.errors import (
    ConfigurationError,
    ManagerLost,
    ResourceSpecError,
    ShardUnavailableError,
    TaskWalltimeExceeded,
    UnsupportedFeatureError,
    WorkerLost,
    WorkerPoisonError,
)


def _worker_lost():
    return WorkerLost(7, "somehost")


def _poison():
    return WorkerPoisonError(7, 2, "somehost")


class TestClassification:
    def test_transient_infrastructure_failures(self):
        policy = RetryPolicy()
        for exc in (
            _worker_lost(),
            ManagerLost("mgr-1", "somehost"),
            ShardUnavailableError("no shard"),
        ):
            assert policy.classify(exc) == retry_mod.TRANSIENT

    def test_fail_fast_deterministic_failures(self):
        policy = RetryPolicy()
        for exc in (
            _poison(),
            ResourceSpecError("cores=999"),
            UnsupportedFeatureError("nope"),
            TaskWalltimeExceeded("task exceeded its walltime"),
        ):
            assert policy.classify(exc) == retry_mod.FAIL_FAST

    def test_user_code_failures_are_plain_retries(self):
        policy = RetryPolicy()
        assert policy.classify(ValueError("boom")) == retry_mod.RETRY

    def test_fail_fast_wins_when_listed_in_both(self):
        policy = RetryPolicy(retryable=(WorkerLost,), fail_fast=(WorkerLost,))
        assert policy.classify(_worker_lost()) == retry_mod.FAIL_FAST

    def test_custom_classes_override_defaults(self):
        policy = RetryPolicy(retryable=(KeyError,), fail_fast=(ValueError,))
        assert policy.classify(KeyError("k")) == retry_mod.TRANSIENT
        assert policy.classify(ValueError("v")) == retry_mod.FAIL_FAST
        # WorkerLost is no longer listed anywhere: ordinary retry.
        assert policy.classify(_worker_lost()) == retry_mod.RETRY


class TestDelays:
    def test_transient_delays_grow_exponentially_without_jitter(self):
        policy = RetryPolicy(base_backoff_s=0.5, factor=2.0, cap_s=100.0, jitter=0.0)
        delays = [policy.delay_for(_worker_lost(), attempt) for attempt in (1, 2, 3, 4)]
        assert delays == [0.5, 1.0, 2.0, 4.0]

    def test_cap_bounds_the_growth(self):
        policy = RetryPolicy(base_backoff_s=1.0, factor=10.0, cap_s=5.0, jitter=0.0)
        assert policy.delay_for(_worker_lost(), 10) == 5.0

    def test_ordinary_failures_use_flat_base_delay(self):
        policy = RetryPolicy(base_backoff_s=0.25, factor=2.0, cap_s=100.0, jitter=0.0)
        assert [policy.delay_for(ValueError(), a) for a in (1, 5)] == [0.25, 0.25]

    def test_zero_base_means_immediate_retry(self):
        policy = RetryPolicy(base_backoff_s=0.0, jitter=0.5)
        assert policy.delay_for(_worker_lost(), 3) == 0.0
        assert policy.delay_for(ValueError(), 1) == 0.0

    def test_fail_fast_never_schedules_a_delay(self):
        policy = RetryPolicy(base_backoff_s=1.0)
        assert policy.delay_for(_poison(), 1) == 0.0

    def test_jitter_stays_within_equal_jitter_bounds(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, factor=1.0, cap_s=10.0, jitter=0.5,
            rng=random.Random(7),
        )
        for _ in range(200):
            delay = policy.delay_for(_worker_lost(), 1)
            # equal-jitter: delay * [1 - j/2, 1 + j/2) = [0.75, 1.25)
            assert 0.75 <= delay < 1.25

    def test_seeded_rng_is_reproducible(self):
        a = RetryPolicy(base_backoff_s=0.5, jitter=0.5, rng=random.Random(42))
        b = RetryPolicy(base_backoff_s=0.5, jitter=0.5, rng=random.Random(42))
        seq_a = [a.delay_for(_worker_lost(), i) for i in range(1, 6)]
        seq_b = [b.delay_for(_worker_lost(), i) for i in range(1, 6)]
        assert seq_a == seq_b


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_backoff_s": -0.1},
            {"factor": 0.5},
            {"cap_s": -1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_from_config_mirrors_legacy_knob(self):
        policy = RetryPolicy.from_config(0.75)
        assert policy.base_backoff_s == 0.75
        assert "RetryPolicy" in repr(policy)


class TestConfigWiring:
    def test_default_config_builds_policy_from_retry_backoff_s(self):
        cfg = Config(retry_backoff_s=0.5)
        assert isinstance(cfg.retry_policy, RetryPolicy)
        assert cfg.retry_policy.base_backoff_s == 0.5

    def test_explicit_policy_wins(self):
        policy = RetryPolicy(base_backoff_s=2.0, factor=3.0)
        cfg = Config(retry_policy=policy, retry_backoff_s=0.1)
        assert cfg.retry_policy is policy

    def test_non_policy_value_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(retry_policy="exponential")

    def test_negative_retry_backoff_rejected(self):
        with pytest.raises(ConfigurationError):
            Config(retry_backoff_s=-1.0)


class TestDFKFailFast:
    """Attempts are tallied through the filesystem: task arguments are
    serialized by value into the executor, so a shared list would not see
    worker-side mutations."""

    def test_poison_error_skips_remaining_retries(self, run_dir, tmp_path):
        """A fail-fast failure fails the AppFuture on attempt 1 of many."""
        log = str(tmp_path / "poison_attempts")

        @python_app
        def poisoned(path):
            with open(path, "a") as fh:
                fh.write("x\n")
            raise WorkerPoisonError(0, 2, "hostq")

        repro.load(Config(retries=5, run_dir=run_dir))
        try:
            with pytest.raises(WorkerPoisonError):
                poisoned(log).result(timeout=30)
            with open(log) as fh:
                assert len(fh.readlines()) == 1  # no retry ever launched
        finally:
            repro.clear()

    def test_ordinary_failure_still_retries(self, run_dir, tmp_path):
        log = str(tmp_path / "flaky_attempts")

        @python_app
        def flaky(path):
            with open(path, "a") as fh:
                fh.write("x\n")
            with open(path) as fh:
                if len(fh.readlines()) < 3:
                    raise ValueError("transient-looking user bug")
            return "ok"

        repro.load(Config(retries=5, run_dir=run_dir))
        try:
            assert flaky(log).result(timeout=30) == "ok"
            with open(log) as fh:
                assert len(fh.readlines()) == 3
        finally:
            repro.clear()
