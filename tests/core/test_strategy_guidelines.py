"""Tests for the elasticity strategy and the Figure 7 executor-selection guidelines."""

import time

import pytest

from repro.core.guidelines import recommend_executor
from repro.core.strategy import Strategy
from repro.executors.base import ReproExecutor
from repro.providers.base import ExecutionProvider, JobState, JobStatus


class FakeProvider(ExecutionProvider):
    """Provider that records scaling calls without running anything."""

    label = "fake"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.submitted = []
        self.cancelled = []
        self._counter = 0

    def submit(self, command, tasks_per_node, job_name="blk"):
        self._counter += 1
        job_id = f"fake.{self._counter}"
        self.submitted.append(job_id)
        return job_id

    def status(self, job_ids):
        return [
            JobStatus(JobState.CANCELLED if j in self.cancelled else JobState.RUNNING) for j in job_ids
        ]

    def cancel(self, job_ids):
        self.cancelled.extend(job_ids)
        return [True] * len(job_ids)


class FakeExecutor(ReproExecutor):
    """Executor whose outstanding count is set directly by the test.

    Setting ``block_activity`` (a ``{block_id: outstanding}`` dict) simulates
    per-manager activity reports, the telemetry HTEX pulls from its
    interchange; ``None`` leaves the executor on the whole-executor fallback.
    """

    def __init__(self, label="fake_ex", provider=None, workers_per_block=4):
        super().__init__(label=label, provider=provider)
        self._outstanding = 0
        self._workers_per_block = workers_per_block
        self.block_activity = None

    def update_block_activity(self):
        if self.block_activity is None:
            return False
        for block_id, outstanding in self.block_activity.items():
            self.block_registry.observe_activity(block_id, managers=1, outstanding=outstanding)
        return True

    def start(self):
        pass

    def submit(self, func, resource_specification, *args, **kwargs):
        raise NotImplementedError

    def shutdown(self, block=True):
        pass

    def _launch_block_command(self, block_id):
        return f"start-workers --block {block_id}"

    @property
    def outstanding(self):
        return self._outstanding

    @property
    def workers_per_block(self):
        return self._workers_per_block


def make_executor(min_blocks=0, max_blocks=4, init_blocks=0, parallelism=1.0, workers_per_block=4):
    provider = FakeProvider(
        min_blocks=min_blocks, max_blocks=max_blocks, init_blocks=init_blocks, parallelism=parallelism
    )
    ex = FakeExecutor(provider=provider, workers_per_block=workers_per_block)
    for _ in range(init_blocks):
        ex.scale_out(1)
    return ex


class TestStrategy:
    def test_none_strategy_never_scales(self):
        ex = make_executor()
        ex._outstanding = 100
        Strategy("none").strategize([ex])
        assert len(ex.blocks) == 0

    def test_scale_out_under_load(self):
        ex = make_executor(max_blocks=4, workers_per_block=4)
        ex._outstanding = 16
        Strategy("simple").strategize([ex])
        assert len(ex.blocks) == 4

    def test_parallelism_scales_fraction_of_demand(self):
        ex = make_executor(max_blocks=10, workers_per_block=4, parallelism=0.5)
        ex._outstanding = 40
        Strategy("simple").strategize([ex])
        # 40 outstanding * 0.5 parallelism / 4 workers-per-block = 5 blocks
        assert len(ex.blocks) == 5

    def test_max_blocks_respected(self):
        ex = make_executor(max_blocks=2, workers_per_block=1)
        ex._outstanding = 1000
        Strategy("simple").strategize([ex])
        assert len(ex.blocks) == 2

    def test_scale_in_when_idle(self):
        ex = make_executor(min_blocks=1, max_blocks=4, init_blocks=3)
        ex._outstanding = 0
        strategy = Strategy("simple", max_idletime=0.1)
        strategy.strategize([ex])  # records idle start
        assert len(ex.blocks) == 3
        time.sleep(0.15)
        strategy.strategize([ex])
        assert len(ex.blocks) == 1

    def test_htex_auto_scale_partial_scale_in(self):
        ex = make_executor(min_blocks=0, max_blocks=4, init_blocks=4, workers_per_block=4)
        ex._outstanding = 4  # needs only one block
        ids = list(ex.blocks)
        # Managers report one busy block; the other three are idle.
        ex.block_activity = {ids[0]: 4, ids[1]: 0, ids[2]: 0, ids[3]: 0}
        strategy = Strategy("htex_auto_scale", max_idletime=0.05)
        strategy.strategize([ex])
        # Hysteresis: the idle blocks have not been idle long enough yet.
        assert len(ex.blocks) == 4
        time.sleep(0.1)
        strategy.strategize([ex])
        assert len(ex.blocks) == 1
        # The busy block survived; scale-in recorded per-block idle times.
        assert ids[0] in ex.blocks
        scale_ins = [h for h in strategy.history if h["action"] == "scale_in"]
        assert scale_ins and all(v >= 0.05 for v in scale_ins[0]["idle_s"].values())

    def test_no_provider_executors_skipped(self):
        ex = FakeExecutor(provider=None)
        ex._outstanding = 50
        Strategy("simple").strategize([ex])  # must not raise
        assert len(ex.blocks) == 0

    def test_history_records_actions(self):
        ex = make_executor(max_blocks=2, workers_per_block=1)
        ex._outstanding = 10
        strategy = Strategy("simple")
        strategy.strategize([ex])
        assert strategy.history and strategy.history[0]["action"] == "scale_out"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Strategy("aggressive")


class TestGuidelines:
    def test_interactive_small_gets_llex(self):
        assert recommend_executor(nodes=4, task_duration_s=0.5, interactive=True).executor == "llex"

    def test_batch_medium_gets_htex(self):
        rec = recommend_executor(nodes=100, task_duration_s=10.0)
        assert rec.executor == "htex"
        assert rec.caveat is None

    def test_huge_gets_exex(self):
        assert recommend_executor(nodes=4000, task_duration_s=120.0).executor == "exex"

    def test_exex_short_tasks_caveat(self):
        rec = recommend_executor(nodes=4000, task_duration_s=1.0)
        assert rec.executor == "exex" and rec.caveat is not None

    def test_htex_ratio_caveat(self):
        # 10 nodes with 0.01 s tasks violates duration/nodes >= 0.01
        rec = recommend_executor(nodes=10, task_duration_s=0.01)
        assert rec.executor == "htex" and rec.caveat is not None

    def test_interactive_but_large_falls_back_to_htex(self):
        assert recommend_executor(nodes=50, task_duration_s=1.0, interactive=True).executor == "htex"

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_executor(nodes=0, task_duration_s=1)
        with pytest.raises(ValueError):
            recommend_executor(nodes=1, task_duration_s=-1)
