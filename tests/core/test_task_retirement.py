"""Tests for task-record retirement and counter-based completion tracking.

Retirement is the memory half of the constant-overhead DFK core: once a
task reaches a final state its record drops the callable, arguments, and
futures (verified here via weakrefs), unless ``retain_task_records=True``.
The counters half — ``task_summary()`` / ``outstanding_tasks()`` /
``wait_for_current_tasks()`` — must agree with the O(n) scans they replaced,
including under concurrent completions.
"""

import gc
import threading
import time
import weakref

import repro
from repro import Config
from repro.core.states import FINAL_STATES
from repro.core.taskrecord import RetiredTaskSummary, TaskRecord
from repro.executors import ThreadPoolExecutor


class Payload:
    """A weakref-able argument object."""


def _make_function():
    """A per-call function object, so it can be garbage collected."""

    def dynamic_app(obj, extra=None):
        return "ran"

    return dynamic_app


def _wait_retired(record, deadline_s=10.0):
    """Retirement happens just after the AppFuture resolves; poll briefly."""
    deadline = time.time() + deadline_s
    while record.retired is None and time.time() < deadline:
        time.sleep(0.005)
    return record.retired


class TestRetirement:
    def test_retired_record_frees_args_kwargs_func(self, threads_dfk):
        payload = Payload()
        kw_payload = Payload()
        func = _make_function()
        refs = [weakref.ref(payload), weakref.ref(kw_payload), weakref.ref(func)]

        fut = threads_dfk.submit(
            func, app_args=(payload,), app_kwargs={"extra": kw_payload}, cache=False
        )
        assert fut.result(timeout=30) == "ran"
        record = threads_dfk.tasks[0]
        assert _wait_retired(record) is not None

        del payload, kw_payload, func, fut
        gc.collect()
        assert [r() for r in refs] == [None, None, None], "retired record pinned heavy fields"
        assert record.args == () and record.kwargs == {}
        assert record.exec_fu is None and record.depends == []

    def test_retired_summary_is_frozen_and_complete(self, threads_dfk):
        fut = threads_dfk.submit(_make_function(), app_args=(Payload(),), cache=False)
        fut.result(timeout=30)
        record = threads_dfk.tasks[0]
        summary = _wait_retired(record)
        assert isinstance(summary, RetiredTaskSummary)
        assert summary.task_id == 0
        assert summary.func_name == "dynamic_app"
        assert summary.time_returned is not None
        # The record's dict-style summary still works after retirement.
        assert record.summary()["status"] == "exec_done"
        # And the status stays readable through the AppFuture.
        assert fut.task_status() == "exec_done"

    def test_failed_tasks_also_retire(self, threads_dfk):
        def boom():
            raise RuntimeError("nope")

        fut = threads_dfk.submit(boom, cache=False)
        try:
            fut.result(timeout=30)
        except RuntimeError:
            pass
        record = threads_dfk.tasks[0]
        assert _wait_retired(record) is not None
        assert record.status.name == "failed"
        assert record.fail_count >= 1  # cheap scalars survive retirement

    def test_retain_task_records_keeps_heavy_fields(self, run_dir):
        cfg = Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
            run_dir=run_dir,
            strategy="none",
            retain_task_records=True,
        )
        dfk = repro.load(cfg)
        try:
            payload = Payload()
            func = _make_function()
            fut = dfk.submit(func, app_args=(payload,), cache=False)
            assert fut.result(timeout=30) == "ran"
            dfk.wait_for_current_tasks(timeout=30)
            record = dfk.tasks[0]
            assert record.retired is None
            assert record.func is func
            assert record.args == (payload,)
        finally:
            repro.clear()

    def test_retire_is_idempotent(self):
        record = TaskRecord(id=1, func=lambda: None, func_name="noop", args=(1, 2))
        first = record.retire()
        second = record.retire()
        assert first is second


class TestCounterTracking:
    def test_summary_and_outstanding_agree_with_table_scan(self, threads_dfk):
        def quick(x):
            return x

        futures = [threads_dfk.submit(quick, app_args=(i,), cache=False) for i in range(50)]
        # Mid-flight: every sample must account for all 50 registered tasks.
        while threads_dfk.outstanding_tasks() > 0:
            summary = threads_dfk.task_summary()
            assert sum(summary.values()) == 50
        assert [f.result(timeout=30) for f in futures] == list(range(50))
        assert threads_dfk.wait_for_current_tasks(timeout=30)
        # Settled: counters must equal a full O(n) scan of the task table.
        scan = {}
        for task in threads_dfk.tasks.values():
            scan[task.status.name] = scan.get(task.status.name, 0) + 1
        assert threads_dfk.task_summary() == scan
        assert threads_dfk.outstanding_tasks() == sum(
            1 for t in threads_dfk.tasks.values() if t.status not in FINAL_STATES
        ) == 0

    def test_counters_agree_under_concurrent_completions(self, threads_dfk):
        stop = threading.Event()
        violations = []

        def sampler():
            while not stop.is_set():
                total = sum(threads_dfk.task_summary().values())
                outstanding = threads_dfk.outstanding_tasks()
                if outstanding < 0 or total < 0:
                    violations.append((total, outstanding))

        thread = threading.Thread(target=sampler, daemon=True)
        thread.start()
        try:
            futures = [
                threads_dfk.submit(time.sleep, app_args=(0.001,), cache=False)
                for _ in range(200)
            ]
            for f in futures:
                f.result(timeout=60)
            assert threads_dfk.wait_for_current_tasks(timeout=60)
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not violations
        assert sum(threads_dfk.task_summary().values()) == 200
        assert threads_dfk.task_summary().get("exec_done") == 200

    def test_wait_for_current_tasks_times_out_then_completes(self, threads_dfk):
        fut = threads_dfk.submit(time.sleep, app_args=(0.5,), cache=False)
        assert threads_dfk.wait_for_current_tasks(timeout=0.05) is False
        assert threads_dfk.wait_for_current_tasks(timeout=30) is True
        assert fut.done()

    def test_wait_wakes_promptly_on_completion(self, threads_dfk):
        """The waiter must be woken by the completing transition, not a poll
        deadline: a 0.3 s task should release the barrier well under the
        generous timeout."""
        threads_dfk.submit(time.sleep, app_args=(0.3,), cache=False)
        start = time.perf_counter()
        assert threads_dfk.wait_for_current_tasks(timeout=30)
        assert time.perf_counter() - start < 5.0
