"""Tests for Files, the object store, staging providers, and the data manager."""

import os

import pytest

from repro.auth.tokens import TokenStore
from repro.data import File, ObjectStore
from repro.data.data_manager import DataManager
from repro.data.object_store import TransferCostModel
from repro.data.staging import FTPStaging, GlobusStaging, HTTPStaging
from repro.errors import FileNotAvailable, StagingError


class TestFile:
    def test_local_file(self, tmp_path):
        path = tmp_path / "x.txt"
        f = File(str(path))
        assert f.scheme == "file"
        assert f.filepath == str(path)
        assert f.filename == "x.txt"
        assert not f.is_remote()

    def test_remote_file_requires_staging(self):
        f = File("http://example.org/data/input.csv")
        assert f.is_remote()
        assert f.filename == "input.csv"
        with pytest.raises(ValueError):
            _ = f.filepath

    def test_staged_remote_file_resolves(self, tmp_path):
        f = File("ftp://host/pub/archive.tar")
        f.local_path = str(tmp_path / "archive.tar")
        assert f.filepath == f.local_path

    def test_unsupported_scheme(self):
        with pytest.raises(ValueError):
            File("s3://bucket/key")

    def test_equality_and_hash(self):
        assert File("/a/b.txt") == File("/a/b.txt")
        assert len({File("/a/b.txt"), File("/a/b.txt"), File("/c.txt")}) == 2

    def test_cleancopy_resets_staging(self, tmp_path):
        f = File("globus://endpoint/data.bin")
        f.local_path = str(tmp_path / "data.bin")
        copy = f.cleancopy()
        assert copy.local_path is None and copy.url == f.url

    def test_fspath_protocol(self, tmp_path):
        path = tmp_path / "fs.txt"
        path.write_text("content")
        assert open(File(str(path))).read() == "content"


class TestObjectStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ObjectStore(root=str(tmp_path / "store"))
        store.put("http://example.org/a.txt", b"hello")
        assert store.get("http://example.org/a.txt", simulate_cost=False) == b"hello"
        assert store.exists("http://example.org/a.txt")
        assert "http://example.org/a.txt" in store.urls()

    def test_missing_object(self, tmp_path):
        store = ObjectStore(root=str(tmp_path / "store"))
        with pytest.raises(FileNotAvailable):
            store.get("http://example.org/missing.txt")

    def test_download_to(self, tmp_path):
        store = ObjectStore(root=str(tmp_path / "store"))
        store.put("ftp://host/file.bin", b"\x00\x01")
        dest = store.download_to("ftp://host/file.bin", str(tmp_path / "out" / "file.bin"))
        assert open(dest, "rb").read() == b"\x00\x01"

    def test_transfer_cost_logged(self, tmp_path):
        store = ObjectStore(root=str(tmp_path / "store"))
        store.put("http://example.org/b.txt", b"x" * 100)
        store.get("http://example.org/b.txt")
        assert store.transfer_log and store.transfer_log[0]["bytes"] == 100

    def test_cost_model_math(self):
        model = TransferCostModel(latency_s=0.1, bandwidth_bytes_per_s=10.0)
        assert model.transfer_time(100) == pytest.approx(10.1)

    def test_delete_and_clear(self, tmp_path):
        store = ObjectStore(root=str(tmp_path / "store"))
        store.put("http://x/1", b"1")
        store.delete("http://x/1")
        assert not store.exists("http://x/1")
        store.put("http://x/2", b"2")
        store.clear()
        assert store.urls() == []

    def test_shared_root_visible_across_instances(self, tmp_path):
        root = str(tmp_path / "shared")
        ObjectStore(root=root).put("http://x/shared.txt", b"shared")
        assert ObjectStore(root=root).get("http://x/shared.txt", simulate_cost=False) == b"shared"


@pytest.fixture
def store(tmp_path):
    return ObjectStore(root=str(tmp_path / "store"), max_simulated_delay_s=0.01)


class TestStagingProviders:
    def test_http_stage_in(self, store, tmp_path):
        store.put("http://data.org/in.csv", b"1,2,3")
        staging = HTTPStaging(store=store)
        f = File("http://data.org/in.csv")
        local = staging.stage_in(f, str(tmp_path / "dest"))
        assert open(local).read() == "1,2,3"

    def test_http_stage_out_unsupported(self, store, tmp_path):
        staging = HTTPStaging(store=store)
        assert not staging.can_stage_out(File("http://data.org/out.csv"))
        with pytest.raises(StagingError):
            staging.stage_out(File("http://data.org/out.csv"), str(tmp_path / "nothing.csv"))

    def test_ftp_stage_in_and_out(self, store, tmp_path):
        staging = FTPStaging(store=store)
        src = tmp_path / "upload.txt"
        src.write_text("payload")
        staging.stage_out(File("ftp://host/up.txt"), str(src))
        local = staging.stage_in(File("ftp://host/up.txt"), str(tmp_path / "down"))
        assert open(local).read() == "payload"

    def test_ftp_missing_remote(self, store, tmp_path):
        with pytest.raises(StagingError):
            FTPStaging(store=store).stage_in(File("ftp://host/none.txt"), str(tmp_path))

    def test_globus_runs_in_data_manager(self, store):
        assert GlobusStaging(store=store).stages_on_executor() is False
        assert HTTPStaging(store=store).stages_on_executor() is True

    def test_globus_requires_token(self, store, tmp_path):
        token_store = TokenStore(path=str(tmp_path / "tokens.json"))
        staging = GlobusStaging(store=store, token_store=token_store)
        store.put("globus://ep/data.h5", b"h5data")
        with pytest.raises(StagingError):
            staging.stage_in(File("globus://ep/data.h5"), str(tmp_path / "d"))
        token_store.login(["transfer.api.globus.org"])
        local = staging.stage_in(File("globus://ep/data.h5"), str(tmp_path / "d"))
        assert open(local, "rb").read() == b"h5data"


class TestDataManager:
    def test_requires_staging(self, store, tmp_path):
        dm = DataManager(dfk=None, working_dir=str(tmp_path / "staging"), store=store)
        assert dm.requires_staging(File("http://x/a.txt"))
        assert not dm.requires_staging(File(str(tmp_path / "local.txt")))

    def test_stage_in_without_dfk_uses_thread(self, store, tmp_path):
        store.put("globus://ep/t.txt", b"via-globus")
        dm = DataManager(dfk=None, working_dir=str(tmp_path / "staging"), store=store)
        fut = dm.stage_in(File("globus://ep/t.txt"))
        staged = fut.result(timeout=10)
        assert open(staged.filepath, "rb").read() == b"via-globus"
        assert dm.stage_in_count == 1

    def test_stage_out_via_thread(self, store, tmp_path):
        dm = DataManager(dfk=None, working_dir=str(tmp_path / "staging"), store=store)
        produced = tmp_path / "result.txt"
        produced.write_text("done")
        fut = dm.stage_out(File("globus://ep/result.txt"), str(produced))
        assert fut.result(timeout=10) == "globus://ep/result.txt"
        assert store.get("globus://ep/result.txt", simulate_cost=False) == b"done"

    def test_unsupported_scheme_raises(self, store, tmp_path):
        dm = DataManager(dfk=None, working_dir=str(tmp_path / "staging"), store=store, staging_providers=[])
        with pytest.raises(StagingError):
            dm.stage_in(File("http://x/a.txt"))

    def test_worker_visibility_env(self, store, tmp_path):
        dm = DataManager(dfk=None, working_dir=str(tmp_path / "staging"), store=store)
        dm.ensure_worker_visibility()
        assert os.environ["REPRO_OBJECT_STORE_DIR"] == store.root
