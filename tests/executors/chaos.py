"""Execution-layer chaos harness: kill workers and managers on purpose.

The fault-containment stack (worker supervision in the manager, poison
quarantine in the interchange, retry classification in the DFK) is only
trustworthy if it survives *real* SIGKILLs of real processes, not mocks.
This module provides the knives:

* :func:`attach_process_manager` — an embedded :class:`Manager` whose
  workers are genuine OS processes (the executor's internal managers use
  thread workers, which cannot be killed), attached to a running
  interchange;
* :class:`ExternalManagerProc` — a whole manager running in its own
  process *group* (the child calls ``os.setpgrp()`` before spawning
  workers), so :meth:`ExternalManagerProc.kill` takes out the manager and
  every worker it forked in one ``killpg`` — no orphan processes leak into
  CI;
* :func:`kill_random_worker` / :class:`ChaosMonkey` — one targeted SIGKILL,
  or a background thread delivering them on a cadence for the duration of a
  campaign;
* :func:`make_poison_task` — a task that ``os._exit``\\ s its worker: the
  canonical poison pill the quarantine exists for.

Used by ``tests/executors/test_worker_crash.py`` (deterministic, tier-1),
``tests/executors/test_chaos.py`` (the ``chaos``-marked acceptance runs)
and ``benchmarks/test_chaos_recovery.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import threading
import time
from typing import List, Optional

from repro.executors.htex.manager import Manager


def wait_for(predicate, timeout=10.0, interval=0.05):
    """Poll ``predicate`` until truthy or ``timeout``; returns the last value."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return predicate()


def attach_process_manager(
    interchange,
    worker_count: int = 2,
    worker_respawn_limit: int = 8,
    supervision_period: float = 0.05,
    block_id: Optional[str] = None,
    heartbeat_period: float = 0.25,
    heartbeat_threshold: float = 30.0,
    prefetch_capacity: int = 0,
) -> Manager:
    """Start an embedded manager with *process* workers on ``interchange``.

    The returned manager's ``_workers`` are real OS processes whose pids can
    be SIGKILLed; its supervisor thread runs in this process, so its
    ``workers_lost`` / ``workers_respawned`` counters are directly
    assertable. Caller owns shutdown.
    """
    manager = Manager(
        interchange_host=interchange.host,
        interchange_port=interchange.port,
        worker_count=worker_count,
        prefetch_capacity=prefetch_capacity,
        block_id=block_id,
        heartbeat_period=heartbeat_period,
        heartbeat_threshold=heartbeat_threshold,
        worker_mode="process",
        worker_respawn_limit=worker_respawn_limit,
        supervision_period=supervision_period,
    )
    manager.start()
    return manager


def kill_random_worker(manager: Manager, rng: Optional[random.Random] = None) -> Optional[int]:
    """SIGKILL one live worker process of ``manager``; returns its pid.

    Returns ``None`` when no worker is currently alive (all mid-respawn, or
    the manager has stopped). Safe to race the supervisor: killing an
    already-dead pid is caught.
    """
    rng = rng or random
    live = [w for w in manager._workers if getattr(w, "exitcode", 0) is None and w.pid]
    if not live:
        return None
    victim = rng.choice(live)
    try:
        os.kill(victim.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        return None
    return victim.pid


class ChaosMonkey:
    """Background thread SIGKILLing random workers on a cadence.

    Picks a random manager from ``managers`` (skipping stopped ones) every
    ``interval`` seconds and kills one of its live workers. ``max_kills``
    bounds the damage so a campaign's respawn budgets are not exhausted by
    accident; :attr:`kills` records what was actually delivered.
    """

    def __init__(
        self,
        managers: List[Manager],
        interval: float = 0.25,
        max_kills: int = 1_000_000,
        seed: Optional[int] = None,
    ):
        self.managers = managers
        self.interval = interval
        self.max_kills = max_kills
        self.kills = 0
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, name="chaos-monkey", daemon=True)

    def start(self) -> "ChaosMonkey":
        self._thread.start()
        return self

    def stop(self) -> int:
        """Stop killing; returns the number of kills delivered."""
        self._stop.set()
        self._thread.join(timeout=5)
        return self.kills

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if self.kills >= self.max_kills:
                return
            candidates = [m for m in self.managers if not m._stop_event.is_set()]
            if not candidates:
                continue
            if kill_random_worker(self._rng.choice(candidates), self._rng) is not None:
                self.kills += 1


def _external_manager_main(host, port, worker_count, block_id, worker_respawn_limit):
    # New process group: our forked workers inherit it, so one killpg later
    # reaps the whole family. Keeps CI free of orphan worker processes.
    os.setpgrp()
    manager = Manager(
        interchange_host=host,
        interchange_port=port,
        worker_count=worker_count,
        block_id=block_id,
        heartbeat_period=0.25,
        heartbeat_threshold=30.0,
        worker_mode="process",
        worker_respawn_limit=worker_respawn_limit,
        supervision_period=0.05,
    )
    manager.run_forever()


class ExternalManagerProc:
    """A manager living in its own process group, built to be murdered.

    The embedded managers above run their supervisor inside the test
    process, which is the right shape for asserting on worker-level
    containment — but killing *the manager itself* needs a separate
    process. :meth:`kill` SIGKILLs the whole group (manager + its forked
    workers), giving the interchange's heartbeat sweep a genuine
    ``ManagerLost`` to detect.
    """

    def __init__(
        self,
        interchange,
        worker_count: int = 2,
        block_id: str = "chaos-ext",
        worker_respawn_limit: int = 8,
    ):
        ctx = multiprocessing.get_context("fork")
        self.proc = ctx.Process(
            target=_external_manager_main,
            args=(interchange.host, interchange.port, worker_count, block_id, worker_respawn_limit),
            name=f"external-manager-{block_id}",
            daemon=False,  # daemons cannot fork the worker children
        )
        self.proc.start()

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.exitcode is None

    def kill(self) -> None:
        """SIGKILL the manager's whole process group, workers included."""
        if self.proc.pid is None:
            return
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        self.proc.join(timeout=5)

    def close(self) -> None:
        """Best-effort cleanup for tests that did not get to the kill."""
        if self.alive():
            self.kill()


def make_poison_task(exit_code: int = 13):
    """A task whose execution takes its worker down with ``os._exit``.

    ``os._exit`` skips every ``finally``/atexit hook, exactly like a
    segfault or the OOM killer from the manager's point of view: the worker
    vanishes with its claim still published, which is what the supervisor
    and the interchange's poison quarantine are built to contain. Defined as
    a closure so it serializes by value into worker processes.
    """

    def poison_pill():
        os._exit(exit_code)

    return poison_pill


def make_sleeper(duration: float = 0.05):
    """A task that holds a worker long enough for the monkey to find it."""

    def sleeper(task_tag=None):
        time.sleep(duration)
        return task_tag

    return sleeper
