"""Tests for the block lifecycle: registry transitions, idle-aware scale-in
selection, the HTEX drain protocol, and max_idletime hysteresis (§3.6, §4.4)."""

import time

from repro.core.strategy import Strategy
from repro.executors.base import ReproExecutor
from repro.executors.blocks import BlockRegistry, BlockState
from repro.executors.htex import HighThroughputExecutor
from repro.providers.base import ExecutionProvider, JobState, JobStatus


def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class FakeProvider(ExecutionProvider):
    """Provider that records scaling calls without running anything."""

    label = "fake"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.submitted = []
        self.cancelled = []
        self._counter = 0

    def submit(self, command, tasks_per_node, job_name="blk"):
        self._counter += 1
        job_id = f"fake.{self._counter}"
        self.submitted.append(job_id)
        return job_id

    def status(self, job_ids):
        return [
            JobStatus(JobState.CANCELLED if j in self.cancelled else JobState.RUNNING)
            for j in job_ids
        ]

    def cancel(self, job_ids):
        self.cancelled.extend(job_ids)
        return [True] * len(job_ids)


class FakeExecutor(ReproExecutor):
    """Executor with test-controlled outstanding count and activity reports."""

    def __init__(self, label="fake_ex", provider=None, workers_per_block=4):
        super().__init__(label=label, provider=provider)
        self._outstanding = 0
        self._workers_per_block = workers_per_block
        self.block_activity = None

    def start(self):
        pass

    def submit(self, func, resource_specification, *args, **kwargs):
        raise NotImplementedError

    def shutdown(self, block=True):
        pass

    def _launch_block_command(self, block_id):
        return f"start-workers --block {block_id}"

    def update_block_activity(self):
        if self.block_activity is None:
            return False
        for block_id, outstanding in self.block_activity.items():
            self.block_registry.observe_activity(block_id, managers=1, outstanding=outstanding)
        return True

    @property
    def outstanding(self):
        return self._outstanding

    @property
    def workers_per_block(self):
        return self._workers_per_block


# ---------------------------------------------------------------------------
# Registry state machine
# ---------------------------------------------------------------------------
class TestBlockRegistry:
    def test_new_block_is_pending(self):
        reg = BlockRegistry()
        record = reg.add("b1", "job1")
        assert record.state is BlockState.PENDING
        assert reg.active_count() == 1

    def test_provider_running_moves_pending_to_idle(self):
        """The boot window counts as idle so never-used blocks stay reclaimable."""
        reg = BlockRegistry()
        reg.add("b1", "job1")
        reg.observe_provider("b1", JobState.RUNNING)
        record = reg.get("b1")
        assert record.state is BlockState.IDLE
        assert record.idle_since is not None

    def test_activity_reports_drive_running_idle_edge(self):
        reg = BlockRegistry()
        reg.add("b1", "job1")
        reg.observe_activity("b1", managers=1, outstanding=3)
        assert reg.get("b1").state is BlockState.RUNNING
        reg.observe_activity("b1", managers=1, outstanding=0)
        record = reg.get("b1")
        assert record.state is BlockState.IDLE
        first_idle = record.idle_since
        # Repeated idle reports must NOT reset the idle clock (hysteresis input).
        reg.observe_activity("b1", managers=1, outstanding=0)
        assert reg.get("b1").idle_since == first_idle

    def test_terminal_provider_states_retire_the_block(self):
        reg = BlockRegistry()
        reg.add("ok", "j1")
        reg.add("bad", "j2")
        reg.observe_provider("ok", JobState.COMPLETED)
        reg.observe_provider("bad", JobState.FAILED)
        assert reg.get("ok").state is BlockState.TERMINATED
        assert reg.get("bad").state is BlockState.FAILED
        assert reg.active_count() == 0

    def test_draining_block_ignores_activity_and_records_idle_time(self):
        reg = BlockRegistry()
        reg.add("b1", "j1")
        reg.observe_activity("b1", managers=1, outstanding=0)
        time.sleep(0.05)
        reg.mark_draining("b1")
        record = reg.get("b1")
        assert record.state is BlockState.DRAINING
        assert record.idle_at_drain >= 0.05
        # Activity reports arriving after the drain decision do not resurrect it.
        reg.observe_activity("b1", managers=1, outstanding=2)
        assert reg.get("b1").state is BlockState.DRAINING
        reg.mark_terminated("b1", reason="drained")
        assert reg.get("b1").state is BlockState.TERMINATED

    def test_idle_blocks_filters_and_sorts_by_idle_duration(self):
        reg = BlockRegistry()
        reg.add("old", "j1")
        reg.add("young", "j2")
        reg.add("busy", "j3")
        reg.observe_activity("old", 1, 0)
        time.sleep(0.08)
        reg.observe_activity("young", 1, 0)
        reg.observe_activity("busy", 1, 5)
        eligible = reg.idle_blocks(min_idle=0.0)
        assert [r.block_id for r in eligible] == ["old", "young"]
        assert [r.block_id for r in reg.idle_blocks(min_idle=0.05)] == ["old"]

    def test_managers_lost_makes_running_block_idle(self):
        """Managers dying while the provider job survives must not freeze the
        block in RUNNING forever — it becomes idle and thus reclaimable."""
        reg = BlockRegistry()
        reg.add("b1", "j1")
        reg.observe_activity("b1", managers=2, outstanding=5)
        assert reg.get("b1").state is BlockState.RUNNING
        reg.observe_managers_lost("b1")
        record = reg.get("b1")
        assert record.state is BlockState.IDLE
        assert record.managers == 0 and record.outstanding_tasks == 0
        assert record.idle_since is not None

    def test_terminal_records_are_pruned_beyond_the_cap(self):
        reg = BlockRegistry(max_terminal_records=5)
        for i in range(20):
            reg.add(f"b{i}", f"j{i}")
            reg.mark_terminated(f"b{i}")
        reg.add("live", "jlive")
        assert reg.active_count() == 1
        snapshot = reg.snapshot()
        terminal = [r for r in snapshot if r.state.terminal]
        # Only the newest 5 retired records are kept; the live one survives.
        assert len(terminal) == 5
        assert {r.block_id for r in terminal} == {f"b{i}" for i in range(15, 20)}
        assert reg.get("live") is not None

    def test_transition_events_fire(self):
        events = []
        reg = BlockRegistry(on_transition=lambda r, old, new: events.append((r.block_id, old, new)))
        reg.add("b1", "j1")
        reg.observe_activity("b1", 1, 1)
        reg.observe_activity("b1", 1, 0)
        reg.mark_draining("b1")
        reg.mark_terminated("b1")
        assert [(old, new) for _, old, new in events] == [
            (None, BlockState.PENDING),
            (BlockState.PENDING, BlockState.RUNNING),
            (BlockState.RUNNING, BlockState.IDLE),
            (BlockState.IDLE, BlockState.DRAINING),
            (BlockState.DRAINING, BlockState.TERMINATED),
        ]


# ---------------------------------------------------------------------------
# Scale-in selection
# ---------------------------------------------------------------------------
class TestScaleInSelection:
    def test_scale_in_picks_the_idle_block_not_the_busy_one(self):
        provider = FakeProvider(min_blocks=0, max_blocks=4, init_blocks=0)
        ex = FakeExecutor(provider=provider, workers_per_block=2)
        ids = ex.scale_out(2)
        busy, idle = ids[0], ids[1]
        ex.block_registry.observe_activity(busy, managers=1, outstanding=2)
        ex.block_registry.observe_activity(idle, managers=1, outstanding=0)
        removed = ex.scale_in(1)
        assert removed == [idle]
        assert busy in ex.blocks and idle not in ex.blocks

    def test_scale_in_with_max_idletime_only_takes_sufficiently_idle_blocks(self):
        provider = FakeProvider(min_blocks=0, max_blocks=4)
        ex = FakeExecutor(provider=provider)
        ids = ex.scale_out(2)
        ex.block_registry.observe_activity(ids[0], 1, 0)
        time.sleep(0.08)
        ex.block_registry.observe_activity(ids[1], 1, 0)
        removed = ex.scale_in(2, max_idletime=0.05)
        # Only the first block has been idle >= 0.05 s; the second survives.
        assert removed == [ids[0]]
        assert ids[1] in ex.blocks

    def test_scale_in_without_idle_info_falls_back_to_newest_first(self):
        provider = FakeProvider(min_blocks=0, max_blocks=4)
        ex = FakeExecutor(provider=provider)
        ids = ex.scale_out(3)
        removed = ex.scale_in(1)
        assert removed == [ids[-1]]

    def test_scale_in_never_reselects_a_draining_block(self):
        provider = FakeProvider(min_blocks=0, max_blocks=4)
        ex = FakeExecutor(provider=provider)
        ids = ex.scale_out(2)
        ex.block_registry.mark_draining(ids[-1])
        removed = ex.scale_in(1)
        # The newest block is mid-drain; terminating it again would kill the
        # in-flight tasks its drain is waiting on — the older one goes instead.
        assert removed == [ids[0]]

    def test_scale_in_batches_provider_cancels(self):
        calls = []
        provider = FakeProvider(min_blocks=0, max_blocks=8)
        orig_cancel = provider.cancel
        provider.cancel = lambda job_ids: calls.append(list(job_ids)) or orig_cancel(job_ids)
        ex = FakeExecutor(provider=provider)
        ex.scale_out(4)
        ex.scale_in(4)
        # One batched provider RPC, not one per block.
        assert len(calls) == 1 and len(calls[0]) == 4


# ---------------------------------------------------------------------------
# Hysteresis under bursty load
# ---------------------------------------------------------------------------
class TestHysteresis:
    def test_bursty_load_resets_the_idle_clock(self):
        provider = FakeProvider(min_blocks=1, max_blocks=3, init_blocks=3, parallelism=1.0)
        ex = FakeExecutor(provider=provider, workers_per_block=4)
        for _ in range(3):
            ex.scale_out(1)
        strategy = Strategy("simple", max_idletime=0.3)

        ex._outstanding = 0
        strategy.strategize([ex])       # blocks go idle; clock starts
        assert len(ex.blocks) == 3
        time.sleep(0.1)
        ex._outstanding = 5             # burst arrives before max_idletime
        strategy.strategize([ex])       # busy again: idle clock resets
        assert len(ex.blocks) == 3
        ex._outstanding = 0
        strategy.strategize([ex])       # idle anew; clock restarts from here
        time.sleep(0.15)
        strategy.strategize([ex])       # idle only 0.15 s < 0.3 s: no scale-in
        assert len(ex.blocks) == 3
        time.sleep(0.2)
        strategy.strategize([ex])       # now idle >= 0.3 s: shrink to min_blocks
        assert len(ex.blocks) == 1
        scale_ins = [h for h in strategy.history if h["action"] == "scale_in"]
        assert len(scale_ins) == 1
        assert all(v >= 0.3 for v in scale_ins[0]["idle_s"].values())


# ---------------------------------------------------------------------------
# HTEX drain protocol
# ---------------------------------------------------------------------------
class TestHTEXDrain:
    def test_draining_manager_receives_no_new_dispatches(self):
        ex = HighThroughputExecutor(
            label="htex_drain", workers_per_node=1, internal_managers=2, heartbeat_period=0.2
        )
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 2)
            m0, m1 = ex._internal_manager_objs
            assert ex.interchange.command("drain_block", block_id=m0.block_id) == 1
            futures = [ex.submit(lambda x: x + 1, {}, i) for i in range(10)]
            assert sorted(f.result(timeout=30) for f in futures) == list(range(1, 11))
            # Every task went to the surviving manager.
            assert m0.tasks_received == 0
            assert m1.tasks_received == 10
            # With nothing in flight, the drained manager is shut down.
            assert wait_for(lambda: m0._stop_event.is_set(), timeout=10)
            assert not m1._stop_event.is_set()
        finally:
            ex.shutdown()

    def test_drain_waits_for_in_flight_tasks_to_settle(self):
        drained = []
        ex = HighThroughputExecutor(
            label="htex_settle", workers_per_node=1, internal_managers=1, heartbeat_period=0.2
        )
        ex.start()
        try:
            ex.interchange.block_drained_callback = drained.append
            assert wait_for(lambda: ex.connected_workers >= 1)
            manager = ex._internal_manager_objs[0]
            fut = ex.submit(time.sleep, {}, 0.8)
            assert wait_for(lambda: manager.tasks_received == 1)
            ex.interchange.command("drain_block", block_id=manager.block_id)
            time.sleep(0.2)
            # The task is still running: the manager must not be shut down yet.
            assert not manager._stop_event.is_set()
            assert fut.result(timeout=30) is None
            # Once the in-flight task settled, the drain completes.
            assert wait_for(lambda: manager._stop_event.is_set(), timeout=10)
            assert wait_for(lambda: drained == [manager.block_id], timeout=10)
        finally:
            ex.shutdown()

    def test_manager_registering_into_draining_block_is_drained_on_arrival(self):
        """A manager that boots into a block already selected for scale-in
        must never become dispatch-eligible; its late registration would
        otherwise stall the drain (or run tasks on a job about to be killed)."""
        from repro.executors.htex.interchange import Interchange
        from repro.executors.htex.manager import Manager
        from repro.serialize import pack_apply_message

        results = []
        drained = []
        ix = Interchange(result_callback=results.append, block_drained_callback=drained.append)
        ix.start()
        m1 = m2 = None
        try:
            m1 = Manager(ix.host, ix.port, worker_count=1, block_id="b1", worker_mode="thread")
            m1.start()
            assert wait_for(lambda: ix.connected_manager_count == 1)
            # Keep the drain open: one in-flight task on m1.
            ix.submit_task(1, pack_apply_message(time.sleep, (0.8,), {}))
            assert wait_for(lambda: m1.tasks_received == 1)
            assert ix.command("drain_block", block_id="b1") == 1
            # A second manager of the SAME block registers mid-drain.
            m2 = Manager(ix.host, ix.port, worker_count=1, block_id="b1", worker_mode="thread")
            m2.start()
            assert wait_for(lambda: ix.connected_manager_count == 2)
            managers = ix.command("connected_managers")
            assert all(m["draining"] for m in managers)
            # Once the in-flight task settles, the whole block drains.
            assert wait_for(lambda: drained == ["b1"], timeout=15)
            assert len(results) == 1 and results[0]["task_id"] == 1
            assert m2.tasks_received == 0
        finally:
            for m in (m1, m2):
                if m is not None:
                    m.shutdown()
            ix.stop()

    def test_drain_timeout_with_only_draining_survivors_fails_tasks(self):
        """Stuck tasks from a timed-out drain must fail with ManagerLost when
        the only other managers are themselves draining — requeueing onto a
        queue nobody serves would hang the caller forever."""
        from repro.errors import ManagerLost
        from repro.executors.htex.interchange import Interchange, ManagerRecord

        results = []
        ix = Interchange(result_callback=results.append)
        try:
            stuck = ManagerRecord(identity="m-stuck", block_id="b1", hostname="h", worker_count=1)
            stuck.draining = True
            stuck.outstanding = {7: {"task_id": 7, "buffer": b"", "redispatches": 0}}
            other = ManagerRecord(identity="m-other", block_id="b2", hostname="h", worker_count=1)
            other.draining = True
            with ix._managers_lock:
                ix._managers = {"m-stuck": stuck, "m-other": other}
            ix._manager_lost("m-stuck", reason="drain timeout")
            assert len(results) == 1
            assert isinstance(results[0]["exception"], ManagerLost)
            assert ix.pending_tasks.qsize() == 0
        finally:
            ix.server.close()

    def test_scale_in_of_managerless_block_cancels_immediately(self):
        provider = FakeProvider(min_blocks=0, max_blocks=2, init_blocks=0)
        ex = HighThroughputExecutor(label="htex_pending", provider=provider, workers_per_node=1)
        ex.start()
        try:
            (block_id,) = ex.scale_out(1)
            # No manager ever connects (FakeProvider runs nothing): scale-in
            # must not wait for a drain that cannot complete.
            removed = ex.scale_in(1)
            assert removed == [block_id]
            assert ex.blocks == {}
            assert provider.cancelled == provider.submitted
            assert ex.block_registry.get(block_id).state is BlockState.TERMINATED
        finally:
            ex.shutdown()


# ---------------------------------------------------------------------------
# Monitoring integration
# ---------------------------------------------------------------------------
class TestBlockMonitoring:
    def test_block_transitions_emit_block_info_events(self):
        from repro.monitoring.messages import MessageType

        events = []

        class Radio:
            def send(self, message_type, payload):
                events.append((message_type, payload))

        ex = FakeExecutor(provider=FakeProvider())
        ex.monitoring_radio = Radio()
        (block_id,) = ex.scale_out(1)
        ex.block_registry.observe_activity(block_id, managers=1, outstanding=0)
        ex.scale_in(1)
        assert all(mtype is MessageType.BLOCK_INFO for mtype, _ in events)
        assert [p["new_state"] for _, p in events] == ["PENDING", "IDLE", "TERMINATED"]
        assert all(p["executor"] == ex.label and p["block_id"] == block_id for _, p in events)


# ---------------------------------------------------------------------------
# Strategy end-to-end over the registry (no real processes)
# ---------------------------------------------------------------------------
class TestStrategyBlockAwareness:
    def test_strategy_never_drains_a_busy_block(self):
        provider = FakeProvider(min_blocks=0, max_blocks=3, init_blocks=0, parallelism=1.0)
        ex = FakeExecutor(provider=provider, workers_per_block=2)
        ids = ex.scale_out(3)
        # One busy block (2 tasks) and two long-idle blocks.
        ex._outstanding = 2
        ex.block_activity = {ids[0]: 2, ids[1]: 0, ids[2]: 0}
        strategy = Strategy("htex_auto_scale", max_idletime=0.05)
        strategy.strategize([ex])
        time.sleep(0.1)
        strategy.strategize([ex])
        assert set(ex.blocks) == {ids[0]}

    def test_draining_blocks_count_against_max_blocks(self):
        provider = FakeProvider(min_blocks=0, max_blocks=3, init_blocks=0, parallelism=1.0)
        ex = FakeExecutor(provider=provider, workers_per_block=1)
        ids = ex.scale_out(3)
        for block_id in ids[:2]:
            ex.block_registry.mark_draining(block_id)
        ex._outstanding = 10  # wants 3 blocks, but 2 jobs are still draining
        Strategy("simple").strategize([ex])
        # active=1, draining=2: no headroom — total live jobs stay at max_blocks.
        assert len(provider.submitted) == 3

    def test_failed_block_is_retired_and_replaced(self):
        provider = FakeProvider(min_blocks=0, max_blocks=2, init_blocks=0, parallelism=1.0)
        ex = FakeExecutor(provider=provider, workers_per_block=1)
        (block_id,) = ex.scale_out(1)
        ex.block_registry.observe_provider(block_id, JobState.FAILED)
        assert ex.block_registry.active_count() == 0
        ex._outstanding = 1
        Strategy("simple").strategize([ex])
        # The dead block no longer counts toward capacity: a new one is added.
        assert len(provider.submitted) == 2
