"""Chaos acceptance campaign: sustained SIGKILLs against a live workflow.

Marked ``chaos`` and excluded from the default (tier-1) run — these tests
fire real signals at real processes on a timer, which is the point, but it
makes them load-sensitive. Run with ``pytest -m chaos tests/executors`` (the
CI chaos-smoke step does, at reduced scale via ``REPRO_BENCH_FAST=1``).

The acceptance criteria, from the fault-containment design:

* every non-poison task completes **exactly once from the client's view**:
  its AppFuture resolves once, with the right value, despite the kills,
* side effects are **at-least-once with every duplicate accounted for**:
  each task appends a marker line at completion, and any task with more
  than one line must be explained by a fault-triggered redispatch (a kill
  landing between a task's completion and its result reaching the
  interchange re-runs it — the documented price of redispatch-for-
  availability; what must never happen is a *spontaneous* duplicate),
* every poison task fails with a typed
  :class:`~repro.errors.WorkerPoisonError` after exactly
  ``poison_threshold`` worker kills,
* zero unresolved AppFutures at the end,
* the interchange's in-flight core accounting returns to zero.
"""

import os

import pytest

import repro
from repro import Config, RetryPolicy
from repro.apps.app import python_app
from repro.errors import WorkerPoisonError
from repro.executors import HighThroughputExecutor

from chaos import (
    ChaosMonkey,
    ExternalManagerProc,
    attach_process_manager,
    make_poison_task,
    wait_for,
)

FAST = os.environ.get("REPRO_BENCH_FAST", "").lower() in ("1", "true", "yes")

N_TASKS = 60 if FAST else 500
N_POISON = 2 if FAST else 5
#: Long enough that the monkey's kills land mid-task, not between tasks.
TASK_SLEEP = 0.2 if FAST else 0.25
MONKEY_KILLS = 6 if FAST else 25
MONKEY_INTERVAL = 0.15 if FAST else 0.3

pytestmark = pytest.mark.chaos


@pytest.mark.timeout(280)
def test_chaos_campaign_completes_every_task_exactly_once(tmp_path, run_dir):
    markers = tmp_path / "markers"
    markers.mkdir()
    marker_root = str(markers)

    executor = HighThroughputExecutor(
        label="htex_chaos",
        workers_per_node=4,
        internal_managers=0,
        heartbeat_period=0.25,
        heartbeat_threshold=5.0,
        # Under sustained random kills a *healthy* task can eat two unlucky
        # SIGKILLs; threshold 4 keeps false-positive quarantines out of the
        # campaign while still bounding what a real poison task can destroy.
        poison_threshold=4,
        worker_respawn_limit=200,  # the monkey must not out-kill the budget
    )
    cfg = Config(
        executors=[executor],
        retries=3,
        retry_policy=RetryPolicy(base_backoff_s=0.05, factor=2.0, cap_s=0.5, jitter=0.5),
        strategy="none",
        run_dir=run_dir,
    )
    repro.load(cfg)

    task_sleep = TASK_SLEEP

    @python_app
    def stamped(i, root):
        import os
        import time
        time.sleep(task_sleep)
        with open(os.path.join(root, f"task_{i}"), "a") as fh:
            fh.write("done\n")
        return i

    poison_app = python_app(make_poison_task(13))

    managers = [
        attach_process_manager(executor.interchange, worker_count=4, worker_respawn_limit=200,
                               block_id=f"chaos-{i}")
        for i in range(2)
    ]
    external = ExternalManagerProc(executor.interchange, worker_count=4, block_id="chaos-ext")
    monkey = None
    try:
        assert wait_for(lambda: executor.connected_workers >= 12, timeout=30)

        futures = [stamped(i, marker_root) for i in range(N_TASKS)]
        poisons = [poison_app() for _ in range(N_POISON)]
        monkey = ChaosMonkey(
            managers, interval=MONKEY_INTERVAL, max_kills=MONKEY_KILLS, seed=1234
        ).start()

        # One whole manager (plus all its workers) dies mid-campaign.
        wait_for(lambda: sum(f.done() for f in futures) >= N_TASKS // 4, timeout=120)
        external.kill()
        assert not external.alive()

        results = [f.result(timeout=240) for f in futures]
        assert results == list(range(N_TASKS))
        for fut in poisons:
            with pytest.raises(WorkerPoisonError) as excinfo:
                fut.result(timeout=240)
            # Quarantined at exactly poison_threshold kills, never more.
            assert excinfo.value.kills == executor.poison_threshold
        monkey_kills = monkey.stop()
        monkey = None

        # Every task really ran, and every *duplicate* execution is explained
        # by a fault-triggered redispatch (a kill in the window between task
        # completion and result delivery re-runs the task). Spontaneous
        # duplicates — extras without a matching redispatch — are a bug.
        extras = 0
        for i in range(N_TASKS):
            path = markers / f"task_{i}"
            assert path.exists(), f"task {i} never completed"
            stamps = len(path.read_text().splitlines())
            assert stamps >= 1
            extras += stamps - 1

        # Zero unresolved AppFutures.
        repro.wait_for_current_tasks()
        assert all(f.done() for f in futures + poisons)

        faults = executor.interchange.fault_stats()
        assert extras <= faults["tasks_redispatched"], (
            f"{extras} duplicate executions but only "
            f"{faults['tasks_redispatched']} fault-triggered redispatches"
        )
        # The campaign actually hurt: the manager kill plus (usually) worker
        # kills that landed mid-task. Only the manager loss is guaranteed —
        # the monkey can only catch workers that were holding tasks.
        assert faults["managers_lost"] >= 1
        assert faults["tasks_poisoned"] == N_POISON
        if monkey_kills:
            assert faults["workers_lost"] >= 1
        # Core-slot accounting converges to zero once everything settles.
        assert wait_for(
            lambda: executor.interchange.fault_stats()["in_flight_cores"] == 0, timeout=30
        )
        assert executor.interchange.command("scheduling_stats")["oversubscription_events"] == 0
    finally:
        if monkey is not None:
            monkey.stop()
        external.close()
        for m in managers:
            m.shutdown()
        repro.clear()


@pytest.mark.timeout(120)
def test_manager_kill_mid_drain_settles_every_future(run_dir):
    """Kill a whole manager while work is in flight; retries absorb it."""
    executor = HighThroughputExecutor(
        label="htex_mgr_kill",
        workers_per_node=4,
        internal_managers=0,
        heartbeat_period=0.25,
        heartbeat_threshold=3.0,
    )
    cfg = Config(
        executors=[executor],
        retries=2,
        retry_policy=RetryPolicy(base_backoff_s=0.05, factor=2.0, cap_s=0.5),
        strategy="none",
        run_dir=run_dir,
    )
    repro.load(cfg)

    @python_app
    def slow_square(x):
        import time
        time.sleep(0.05)
        return x * x

    survivor = attach_process_manager(executor.interchange, worker_count=4, block_id="keep")
    doomed = ExternalManagerProc(executor.interchange, worker_count=4, block_id="doom")
    try:
        assert wait_for(lambda: executor.connected_workers >= 8, timeout=30)
        n = 20 if FAST else 80
        futures = [slow_square(i) for i in range(n)]
        wait_for(lambda: sum(f.done() for f in futures) >= n // 8, timeout=60)
        doomed.kill()
        assert [f.result(timeout=120) for f in futures] == [i * i for i in range(n)]
        assert executor.interchange.fault_stats()["managers_lost"] == 1
        assert wait_for(
            lambda: executor.interchange.fault_stats()["in_flight_cores"] == 0, timeout=30
        )
    finally:
        doomed.close()
        survivor.shutdown()
        repro.clear()
