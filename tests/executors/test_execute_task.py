"""Tests for the shared execution kernel."""

import os

import pytest

from repro.executors.execute_task import execute_task_inline, roundtrip_task
from repro.serialize import pack_apply_message, deserialize
from repro.executors.execute_task import execute_task


def add(a, b):
    return a + b


def boom():
    raise ValueError("exploded")


def cwd_probe():
    return os.getcwd()


class TestExecutionKernel:
    def test_success_roundtrip(self):
        outcome = roundtrip_task(add, (2, 3), {})
        assert outcome["result"] == 5
        assert "exception" not in outcome
        assert outcome["resource"]["run_duration_s"] >= 0

    def test_exception_captured(self):
        outcome = roundtrip_task(boom, (), {})
        assert "result" not in outcome
        wrapper = outcome["exception"]
        assert isinstance(wrapper.e_value, ValueError)
        assert "exploded" in wrapper.traceback_str
        with pytest.raises(ValueError):
            wrapper.reraise()

    def test_sandbox_dir_used_and_restored(self, tmp_path):
        sandbox = tmp_path / "sandbox"
        before = os.getcwd()
        outcome = roundtrip_task(cwd_probe, (), {}, sandbox_dir=str(sandbox))
        assert outcome["result"] == str(sandbox)
        assert os.getcwd() == before

    def test_unserializable_result_reported(self):
        def returns_generator():
            return (i for i in range(3))

        outcome = roundtrip_task(returns_generator, (), {})
        assert "exception" in outcome

    def test_resource_record_fields(self):
        outcome = roundtrip_task(add, (1, 1), {})
        record = outcome["resource"]
        for key in ("psutil_process_time_user", "psutil_process_memory_resident_kb", "run_duration_s", "pid"):
            assert key in record

    def test_inline_execution(self):
        result, exc = execute_task_inline(add, (4, 5), {})
        assert result == 9 and exc is None
        result, exc = execute_task_inline(boom, (), {})
        assert result is None and isinstance(exc.e_value, ValueError)

    def test_kwargs_passed_through(self):
        outcome = deserialize(execute_task(pack_apply_message(add, (), {"a": 10, "b": 20})))
        assert outcome["result"] == 30
