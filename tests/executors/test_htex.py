"""Tests for the HighThroughputExecutor (internal and provider modes) and its fault tolerance."""

import time

import pytest

from repro.comms import MessageClient
from repro.errors import ManagerLost, ResourceSpecError
from repro.executors import HighThroughputExecutor
from repro.executors.htex.interchange import Interchange
from repro.executors.htex.manager import Manager
from repro.executors.htex import messages as msg
from repro.providers import LocalProvider


def square(x):
    return x * x


def fail_task():
    raise RuntimeError("task failed on worker")


def wait_for(predicate, timeout=10.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def htex_internal():
    ex = HighThroughputExecutor(label="htex_t", workers_per_node=4, internal_managers=1)
    ex.start()
    assert wait_for(lambda: ex.connected_workers >= 4)
    yield ex
    ex.shutdown()


class TestHTEXInternal:
    def test_results_round_trip(self, htex_internal):
        futures = [htex_internal.submit(square, {}, i) for i in range(40)]
        assert sum(f.result(timeout=30) for f in futures) == sum(i * i for i in range(40))

    def test_exceptions_propagate(self, htex_internal):
        with pytest.raises(RuntimeError, match="task failed on worker"):
            htex_internal.submit(fail_task, {}).result(timeout=30)

    def test_outstanding_counts(self, htex_internal):
        futures = [htex_internal.submit(square, {}, i) for i in range(10)]
        for f in futures:
            f.result(timeout=30)
        assert wait_for(lambda: htex_internal.outstanding == 0)

    def test_resource_specification_accepted(self, htex_internal):
        """Specs within the executor's slots run; a multi-core task completes."""
        fut = htex_internal.submit(square, {"cores": 4, "priority": 2}, 2)
        assert fut.result(timeout=30) == 4

    def test_resource_specification_unsatisfiable_or_malformed_rejected(self, htex_internal):
        with pytest.raises(ResourceSpecError):
            htex_internal.submit(square, {"cores": 99}, 2)  # more than any manager has
        with pytest.raises(ResourceSpecError):
            htex_internal.submit(square, {"coars": 2}, 2)  # typoed key must not be dropped

    def test_submit_before_start_rejected(self):
        ex = HighThroughputExecutor(label="unstarted")
        with pytest.raises(RuntimeError):
            ex.submit(square, {}, 1)

    def test_connected_managers_report(self, htex_internal):
        managers = htex_internal.connected_managers
        assert len(managers) == 1
        assert managers[0]["worker_count"] == 4

    def test_lambda_and_closure_tasks(self, htex_internal):
        offset = 100
        fut = htex_internal.submit(lambda x: x + offset, {}, 1)
        assert fut.result(timeout=30) == 101

    def test_multicore_task_not_starved_by_sustained_onecore_stream(self, htex_internal):
        """A cores=4 task under a stream of 1-core tasks (default prefetch).

        Multi-core placement needs free *execution* slots, and sustained
        1-core traffic keeps every slot busy — without the interchange's
        reservation (holding one capable manager back so it drains), the
        4-core task would only run after the whole backlog."""
        order = []
        backlog = [htex_internal.submit(time.sleep, {}, 0.003) for _ in range(150)]
        for fut in backlog:
            fut.add_done_callback(lambda _f: order.append("bulk"))
        wide = htex_internal.submit(time.sleep, {"cores": 4, "priority": 9}, 0)
        wide.add_done_callback(lambda _f: order.append("wide"))
        for fut in backlog:
            fut.result(timeout=60)
        wide.result(timeout=60)
        position = order.index("wide") + 1
        assert position <= len(order) // 4, f"4-core task starved: finished {position}/{len(order)}"
        stats = htex_internal.interchange.command("scheduling_stats")
        assert stats["oversubscription_events"] == 0


class TestHTEXProviderMode:
    def test_blocks_launch_real_managers(self, tmp_path):
        provider = LocalProvider(init_blocks=1, max_blocks=2, script_dir=str(tmp_path / "scripts"))
        ex = HighThroughputExecutor(label="htex_prov", provider=provider, workers_per_node=2, heartbeat_threshold=15)
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 2, timeout=20)
            # Tasks are defined locally so they travel to the worker processes
            # by value (the test module itself is not importable there).
            local_square = lambda x: x * x  # noqa: E731
            futures = [ex.submit(local_square, {}, i) for i in range(20)]
            assert sum(f.result(timeout=60) for f in futures) == sum(i * i for i in range(20))
            assert len(ex.blocks) == 1
        finally:
            ex.shutdown()

    def test_scale_out_and_in(self, tmp_path):
        provider = LocalProvider(init_blocks=1, max_blocks=3, script_dir=str(tmp_path / "scripts"))
        ex = HighThroughputExecutor(label="htex_scale", provider=provider, workers_per_node=1, heartbeat_threshold=15)
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 1, timeout=20)
            new_blocks = ex.scale_out(1)
            assert len(new_blocks) == 1
            assert wait_for(lambda: ex.connected_workers >= 2, timeout=20)
            removed = ex.scale_in(1)
            assert len(removed) == 1
            # Scale-in drains: the block leaves `blocks` only after its
            # manager settles and is shut down, then the job is cancelled.
            assert wait_for(lambda: len(ex.blocks) == 1, timeout=20)
            assert wait_for(lambda: ex.connected_workers <= 1, timeout=20)
            record = ex.block_registry.get(removed[0])
            assert record is not None and record.state.terminal
        finally:
            ex.shutdown()


class TestHTEXFaultTolerance:
    def test_manager_loss_raises_for_outstanding_tasks(self):
        """Killing a manager mid-task produces ManagerLost on its futures (§4.3.1)."""
        ex = HighThroughputExecutor(
            label="htex_faulty",
            workers_per_node=1,
            internal_managers=1,
            heartbeat_period=0.2,
            heartbeat_threshold=1.0,
        )
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 1)
            fut = ex.submit(time.sleep, {}, 30)
            # Let the task get dispatched, then kill the manager abruptly.
            time.sleep(0.5)
            manager = ex._internal_manager_objs[0]
            manager._stop_event.set()
            manager._client.close()
            with pytest.raises(ManagerLost):
                fut.result(timeout=30)
        finally:
            ex.shutdown()

    def test_blacklist_command(self, htex_internal):
        managers = htex_internal.connected_managers
        identity = managers[0]["identity"]
        assert htex_internal.interchange.command("blacklist", identity=identity) is True
        listed = htex_internal.interchange.command("connected_managers")
        assert listed[0]["blacklisted"] is True

    def test_interchange_outstanding_command(self, htex_internal):
        assert htex_internal.interchange.command("outstanding") == 0
        assert htex_internal.interchange.command("worker_count") == 4

    def test_unknown_command_rejected(self, htex_internal):
        with pytest.raises(ValueError):
            htex_internal.interchange.command("destroy_everything")


class TestManagerLossRequeue:
    """On manager loss, batched in-flight tasks are settled individually."""

    @staticmethod
    def _fake_manager(interchange, identity):
        return MessageClient(
            interchange.host,
            interchange.port,
            identity=identity,
            registration_info=msg.manager_registration_info(
                block_id=identity, hostname=identity, worker_count=1, prefetch_capacity=0
            ),
        )

    @staticmethod
    def _await_tasks(client, timeout=5.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            message = client.recv(timeout=0.2)
            if message is not None and message.get("type") == "tasks":
                return message["items"]
        return None

    def test_task_requeued_to_surviving_manager(self):
        results = []
        interchange = Interchange(result_callback=results.append, heartbeat_threshold=60)
        interchange.start()
        first = self._fake_manager(interchange, "mgr-a")
        second = self._fake_manager(interchange, "mgr-b")
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 2)
            interchange.submit_task(0, b"payload")
            # Whichever manager received the task dies holding it.
            items = self._await_tasks(first)
            victim, survivor = (first, second) if items else (second, first)
            if items is None:
                items = self._await_tasks(victim)
            assert items is not None and items[0]["task_id"] == 0
            victim.close()
            # The task is requeued onto the survivor rather than failed.
            requeued = self._await_tasks(survivor)
            assert requeued is not None and requeued[0]["task_id"] == 0
            survivor.send(msg.results_message([{"task_id": 0, "buffer": b"done"}]))
            assert wait_for(lambda: len(results) == 1)
            assert results[0]["task_id"] == 0
            assert results[0]["buffer"] == b"done"
            # The result is annotated with the manager that actually ran it.
            assert results[0]["manager"] in ("mgr-a", "mgr-b")
        finally:
            first.close()
            second.close()
            interchange.stop()

    def test_exhausted_redispatch_budget_fails_each_task_individually(self):
        results = []
        interchange = Interchange(result_callback=results.append, heartbeat_threshold=60)
        interchange.start()
        first = self._fake_manager(interchange, "mgr-a")
        second = self._fake_manager(interchange, "mgr-b")
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 2)
            interchange.submit_task(7, b"payload")
            items = self._await_tasks(first)
            victim, survivor = (first, second) if items else (second, first)
            if items is None:
                items = self._await_tasks(victim)
            assert items is not None
            victim.close()
            assert self._await_tasks(survivor) is not None  # one redispatch allowed
            survivor.close()  # second loss: budget exhausted, no survivors
            assert wait_for(lambda: len(results) == 1)
            assert results[0]["task_id"] == 7
            assert isinstance(results[0]["exception"], ManagerLost)
        finally:
            first.close()
            second.close()
            interchange.stop()


class TestInterchangeUnit:
    def test_round_robin_policy(self):
        results = []
        interchange = Interchange(result_callback=results.append, scheduling_policy="round_robin")
        interchange.start()
        try:
            managers = []
            for i in range(2):
                m = Manager(
                    interchange_host=interchange.host,
                    interchange_port=interchange.port,
                    worker_count=1,
                    worker_mode="thread",
                    heartbeat_threshold=30,
                )
                m.start()
                managers.append(m)
            deadline = time.time() + 5
            while interchange.connected_manager_count < 2 and time.time() < deadline:
                time.sleep(0.05)
            assert interchange.connected_manager_count == 2
            assert interchange.connected_worker_count == 2
            for m in managers:
                m.shutdown()
        finally:
            interchange.stop()
