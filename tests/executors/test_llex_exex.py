"""Tests for the LowLatencyExecutor and ExtremeScaleExecutor."""

import time

import pytest

from repro.executors import ExtremeScaleExecutor, LowLatencyExecutor
from repro.providers import LocalProvider


def negate(x):
    return -x


def wait_for(predicate, timeout=10.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestLLEX:
    def test_internal_workers_round_trip(self):
        ex = LowLatencyExecutor(label="llex_t", internal_workers=2)
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 2)
            futures = [ex.submit(negate, {}, i) for i in range(20)]
            assert [f.result(timeout=30) for f in futures] == [-i for i in range(20)]
        finally:
            ex.shutdown()

    def test_exception_propagates(self):
        ex = LowLatencyExecutor(label="llex_err", internal_workers=1)
        ex.start()
        try:
            def bad():
                raise IndexError("llex failure")

            with pytest.raises(IndexError):
                ex.submit(bad, {}).result(timeout=30)
        finally:
            ex.shutdown()

    def test_no_scaling_without_provider(self):
        ex = LowLatencyExecutor(label="llex_fixed", internal_workers=1)
        ex.start()
        try:
            assert ex.scaling_enabled is False
        finally:
            ex.shutdown()

    def test_single_task_latency_is_low(self):
        """LLEX local round-trip should be a few milliseconds (paper: ~3.5 ms on Midway)."""
        ex = LowLatencyExecutor(label="llex_lat", internal_workers=1)
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 1)
            ex.submit(negate, {}, 0).result(timeout=10)  # warm up
            start = time.perf_counter()
            n = 50
            for i in range(n):
                ex.submit(negate, {}, i).result(timeout=10)
            mean_latency = (time.perf_counter() - start) / n
            assert mean_latency < 0.05, f"mean LLEX latency {mean_latency*1000:.1f} ms is unexpectedly high"
        finally:
            ex.shutdown()

    def test_timed_retry_on_lost_task(self):
        ex = LowLatencyExecutor(label="llex_retry", internal_workers=1, task_timeout=0.3, max_retries=0)
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 1)
            # Kill the only worker, then submit: the task can never complete,
            # so the timed-retry layer must fail the future.
            ex._internal_workers_objs[0].stop()
            time.sleep(0.3)
            fut = ex.submit(negate, {}, 5)
            with pytest.raises(TimeoutError):
                fut.result(timeout=10)
        finally:
            ex.shutdown()

    def test_provider_mode(self, tmp_path):
        provider = LocalProvider(init_blocks=1, script_dir=str(tmp_path / "scripts"))
        ex = LowLatencyExecutor(label="llex_prov", provider=provider, workers_per_node=2)
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 2, timeout=20)
            # Sent by value: the test module is not importable inside the worker processes.
            local_negate = lambda x: -x  # noqa: E731
            futures = [ex.submit(local_negate, {}, i) for i in range(10)]
            assert [f.result(timeout=60) for f in futures] == [-i for i in range(10)]
        finally:
            ex.shutdown()


class TestEXEX:
    def test_internal_pool_round_trip(self):
        ex = ExtremeScaleExecutor(label="exex_t", ranks_per_node=4, internal_pools=1)
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 3)
            futures = [ex.submit(negate, {}, i) for i in range(30)]
            assert sorted(f.result(timeout=60) for f in futures) == sorted(-i for i in range(30))
        finally:
            ex.shutdown()

    def test_rank0_is_manager_not_worker(self):
        ex = ExtremeScaleExecutor(label="exex_ranks", ranks_per_node=3, internal_pools=1)
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 1)
            # 3 ranks => 1 manager + 2 workers
            assert ex.connected_workers == 2
            assert ex.workers_per_block == 2
        finally:
            ex.shutdown()

    def test_requires_at_least_two_ranks(self):
        with pytest.raises(ValueError):
            ExtremeScaleExecutor(ranks_per_node=1)

    def test_exception_propagates(self):
        ex = ExtremeScaleExecutor(label="exex_err", ranks_per_node=2, internal_pools=1)
        ex.start()
        try:
            def bad():
                raise KeyError("exex failure")

            assert wait_for(lambda: ex.connected_workers >= 1)
            with pytest.raises(KeyError):
                ex.submit(bad, {}).result(timeout=60)
        finally:
            ex.shutdown()

    def test_provider_mode_with_process_ranks(self, tmp_path):
        provider = LocalProvider(init_blocks=1, script_dir=str(tmp_path / "scripts"))
        ex = ExtremeScaleExecutor(
            label="exex_prov", provider=provider, ranks_per_node=3, heartbeat_threshold=15, pool_mode="processes"
        )
        ex.start()
        try:
            assert wait_for(lambda: ex.connected_workers >= 2, timeout=30)
            # Sent by value: the test module is not importable inside the MPI rank processes.
            local_negate = lambda x: -x  # noqa: E731
            futures = [ex.submit(local_negate, {}, i) for i in range(10)]
            assert sorted(f.result(timeout=60) for f in futures) == sorted(-i for i in range(10))
        finally:
            ex.shutdown()
