"""Requeue ordering under manager loss and drains (the scheduling subsystem).

A task dispatched to a manager that is then lost — heartbeat loss, send
failure, or a drain that times out — must re-enter the pending queue at its
*original* priority (and accrued age), not at the back. These tests drive a
real Interchange with fake managers (raw MessageClients) so the exact
dispatch order is observable.
"""

import time

from repro.comms import MessageClient
from repro.executors.htex import messages as msg
from repro.executors.htex.interchange import Interchange


def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def fake_manager(interchange, identity, block_id=None, workers=2):
    return MessageClient(
        interchange.host,
        interchange.port,
        identity=identity,
        registration_info=msg.manager_registration_info(
            block_id=block_id or identity, hostname=identity, worker_count=workers, prefetch_capacity=0
        ),
    )


def collect_task_ids(client, n, timeout=10.0):
    """Receive task messages until ``n`` task ids have arrived, in order."""
    ids = []
    deadline = time.time() + timeout
    while len(ids) < n and time.time() < deadline:
        message = client.recv(timeout=0.2)
        if message is not None and message.get("type") == "tasks":
            ids.extend(item["task_id"] for item in message["items"])
    return ids


def first_message_of_type(client, mtype, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        message = client.recv(timeout=0.2)
        if message is not None and message.get("type") == mtype:
            return message
    return None


class TestManagerLostRequeueOrdering:
    def test_requeued_tasks_reenter_at_original_priority(self):
        """Victim's in-flight tasks overtake later, lower-priority arrivals.

        A *helper* manager is kept full for the whole test: it exists so the
        loss path requeues (it only does so while a surviving manager could
        run the work) but can never accept a task, keeping dispatch order
        observable on the fresh manager that registers afterwards.
        """
        results = []
        interchange = Interchange(result_callback=results.append, heartbeat_threshold=60)
        interchange.start()
        helper = fake_manager(interchange, "helper", workers=1)
        victim = fresh = None
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 1)
            interchange.submit_task(0, b"p")  # fills the helper forever
            assert collect_task_ids(helper, 1) == [0]
            victim = fake_manager(interchange, "victim", workers=2)
            assert wait_for(lambda: interchange.connected_manager_count == 2)
            # Two tasks fill the victim (priority 9 and 5)...
            interchange.submit_task(1, b"p", priority=9)
            interchange.submit_task(2, b"p", priority=5)
            assert collect_task_ids(victim, 2) == [1, 2]
            # ...then lower-priority work arrives and queues (nobody has room).
            interchange.submit_task(3, b"p", priority=1)
            interchange.submit_task(4, b"p", priority=0)
            victim.close()  # lost with 1 and 2 in flight
            assert wait_for(lambda: interchange.connected_manager_count == 1)
            fresh = fake_manager(interchange, "fresh", workers=4)
            # The requeued tasks kept their priorities: 9, 5 dispatch before
            # the younger priority-1 and priority-0 tasks, not after them.
            assert collect_task_ids(fresh, 4) == [1, 2, 3, 4]
        finally:
            for client in (helper, victim, fresh):
                if client is not None:
                    client.close()
            interchange.stop()

    def test_multicore_task_requeues_with_its_cores(self):
        """A lost 2-core task still consumes 2 slots where it lands next."""
        results = []
        interchange = Interchange(result_callback=results.append, heartbeat_threshold=60)
        interchange.start()
        helper = fake_manager(interchange, "helper", workers=1)
        victim = fresh = None
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 1)
            interchange.submit_task(0, b"p")  # fills the helper forever
            assert collect_task_ids(helper, 1) == [0]
            victim = fake_manager(interchange, "victim", workers=2)
            assert wait_for(lambda: interchange.connected_manager_count == 2)
            interchange.submit_task(1, b"p", cores=2)
            assert collect_task_ids(victim, 1) == [1]
            victim.close()
            assert wait_for(lambda: interchange.connected_manager_count == 1)
            fresh = fake_manager(interchange, "fresh", workers=2)
            assert collect_task_ids(fresh, 1) == [1]
            # The interchange records the accounting just after the send that
            # our fake client already received — poll rather than race it.
            assert wait_for(
                lambda: interchange.scheduling_stats()["managers"].get("fresh", {}).get("in_flight_cores") == 2
            )
            assert interchange.scheduling_stats()["oversubscription_events"] == 0
        finally:
            for client in (helper, victim, fresh):
                if client is not None:
                    client.close()
            interchange.stop()


class TestDrainRequeueOrdering:
    def test_drain_timeout_requeues_at_original_priority_with_midrain_registration(self):
        """A manager registering mid-drain serves queued work first, then the
        stuck block's requeued tasks — each at its original priority."""
        results = []
        interchange = Interchange(
            result_callback=results.append, heartbeat_threshold=60, drain_timeout=0.5
        )
        interchange.start()
        stuck = fake_manager(interchange, "stuck", block_id="blk-1", workers=2)
        fresh = None
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 1)
            interchange.submit_task(1, b"p", priority=9)
            interchange.submit_task(2, b"p", priority=5)
            assert collect_task_ids(stuck, 2) == [1, 2]
            # More work queues while the stuck manager is full.
            interchange.submit_task(3, b"p", priority=7)
            interchange.submit_task(4, b"p", priority=0)
            # Drain the block; the stuck manager never settles its tasks.
            assert interchange.command("drain_block", block_id="blk-1") == 1
            # A manager registering mid-drain (different block) immediately
            # serves the queued tasks...
            fresh = fake_manager(interchange, "fresh", block_id="blk-2", workers=4)
            assert collect_task_ids(fresh, 2) == [3, 4]
            # ...and once the drain times out, the stuck tasks requeue at
            # their original priorities: 9 before 5, both ahead of nothing
            # else — they do NOT go to the back of the queue.
            assert collect_task_ids(fresh, 2) == [1, 2]
        finally:
            stuck.close()
            if fresh is not None:
                fresh.close()
            interchange.stop()

    def test_manager_registering_into_draining_block_is_not_dispatched(self):
        """Scale-in racing a registration: the late manager drains on arrival."""
        results = []
        interchange = Interchange(
            result_callback=results.append, heartbeat_threshold=60, drain_timeout=30
        )
        interchange.start()
        stuck = fake_manager(interchange, "stuck", block_id="blk-1", workers=1)
        late = None
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 1)
            interchange.submit_task(1, b"p")
            assert collect_task_ids(stuck, 1) == [1]
            interchange.command("drain_block", block_id="blk-1")
            late = fake_manager(interchange, "late", block_id="blk-1", workers=1)
            # The late manager is told to drain and receives no tasks even
            # though work is queued.
            interchange.submit_task(2, b"p", priority=9)
            assert first_message_of_type(late, "drain") is not None
            assert collect_task_ids(late, 1, timeout=0.5) == []
        finally:
            stuck.close()
            if late is not None:
                late.close()
            interchange.stop()
