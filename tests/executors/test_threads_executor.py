"""Tests for the ThreadPoolExecutor."""

import pytest

from repro.executors import ThreadPoolExecutor


def double(x):
    return 2 * x


class TestThreadPoolExecutor:
    def test_submit_and_result(self):
        ex = ThreadPoolExecutor(max_threads=2)
        ex.start()
        try:
            assert ex.submit(double, {}, 21).result(timeout=5) == 42
        finally:
            ex.shutdown()

    def test_requires_start(self):
        ex = ThreadPoolExecutor()
        with pytest.raises(RuntimeError):
            ex.submit(double, {}, 1)

    def test_outstanding_tracks_completion(self):
        ex = ThreadPoolExecutor(max_threads=2)
        ex.start()
        try:
            futures = [ex.submit(double, {}, i) for i in range(10)]
            for f in futures:
                f.result(timeout=5)
            assert ex.outstanding == 0
        finally:
            ex.shutdown()

    def test_exception_propagates(self):
        ex = ThreadPoolExecutor(max_threads=1)
        ex.start()
        try:
            def boom():
                raise KeyError("nope")

            with pytest.raises(KeyError):
                ex.submit(boom, {}).result(timeout=5)
        finally:
            ex.shutdown()

    def test_scaling_disabled(self):
        ex = ThreadPoolExecutor(max_threads=3)
        ex.start()
        try:
            assert ex.scaling_enabled is False
            assert ex.connected_workers == 3
            assert ex.workers_per_block == 3
            assert ex.status() == {}
        finally:
            ex.shutdown()

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ThreadPoolExecutor(max_threads=0)
