"""Worker-side ``walltime_s`` enforcement (the spec field is not advisory).

A task that runs past the ``walltime_s`` in its resource specification is
killed at the worker and fails through its AppFuture with
:class:`~repro.errors.TaskWalltimeExceeded` — and the DFK treats that as
deterministic, so retries are never burned on it.
"""

import time

import pytest

import repro
from repro import Config
from repro.errors import TaskWalltimeExceeded
from repro.executors import HighThroughputExecutor
from repro.executors.execute_task import execute_task
from repro.serialize import deserialize, pack_apply_message


def sleeper(duration):
    time.sleep(duration)
    return "finished"


def wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestExecutionKernel:
    def test_task_within_walltime_completes(self):
        buffer = pack_apply_message(sleeper, (0.01,), {})
        outcome = deserialize(execute_task(buffer, walltime_s=5.0))
        assert outcome["result"] == "finished"

    def test_task_past_walltime_killed(self):
        buffer = pack_apply_message(sleeper, (5.0,), {})
        start = time.perf_counter()
        outcome = deserialize(execute_task(buffer, walltime_s=0.2))
        elapsed = time.perf_counter() - start
        assert "exception" in outcome
        assert isinstance(outcome["exception"].e_value, TaskWalltimeExceeded)
        assert elapsed < 3.0, "the kill must happen at the walltime, not at task end"

    def test_walltime_exception_survives_pickle(self):
        import pickle

        exc = TaskWalltimeExceeded("task exceeded its walltime_s resource spec of 1s")
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, TaskWalltimeExceeded)
        assert "1s" in str(clone)


class TestHTEXIntegration:
    def test_walltime_enforced_through_htex(self, run_dir):
        """End to end: spec walltime kills the task; no retries are burned."""
        executor = HighThroughputExecutor(
            label="htex_wall", workers_per_node=2, internal_managers=1
        )
        cfg = Config(executors=[executor], retries=2, run_dir=run_dir, strategy="none")
        dfk = repro.load(cfg)
        try:
            assert wait_for(lambda: executor.connected_workers >= 2)
            future = dfk.submit(
                sleeper, app_args=(10.0,), resource_spec={"walltime_s": 0.3}
            )
            start = time.perf_counter()
            with pytest.raises(TaskWalltimeExceeded):
                future.result(timeout=30)
            assert time.perf_counter() - start < 8.0
            task = dfk.tasks[future.tid]
            assert task.fail_count == 1, "a walltime kill must not be retried"
            # The worker slot was reclaimed: quick follow-up work still runs.
            follow_up = dfk.submit(sleeper, app_args=(0.01,))
            assert follow_up.result(timeout=30) == "finished"
        finally:
            repro.clear()

    def test_generous_walltime_does_not_interfere(self, run_dir):
        executor = HighThroughputExecutor(
            label="htex_wall_ok", workers_per_node=2, internal_managers=1
        )
        cfg = Config(executors=[executor], run_dir=run_dir, strategy="none")
        dfk = repro.load(cfg)
        try:
            assert wait_for(lambda: executor.connected_workers >= 2)
            future = dfk.submit(
                sleeper, app_args=(0.05,), resource_spec={"walltime_s": 30.0}
            )
            assert future.result(timeout=30) == "finished"
        finally:
            repro.clear()
