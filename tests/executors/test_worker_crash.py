"""Deterministic worker-crash containment tests (tier-1).

Single, targeted SIGKILLs of real worker processes — one fault per test, so
the assertions are exact. The sustained-fire campaigns live in
``test_chaos.py`` behind the ``chaos`` marker.
"""

import os
import signal
import time
import types

import pytest

from repro.comms import MessageClient
from repro.errors import ManagerLost, WorkerLost, WorkerPoisonError
from repro.executors import HighThroughputExecutor
from repro.executors.htex import messages as msg
from repro.executors.htex.interchange import Interchange
from repro.executors.htex.manager import Manager
from repro.executors.htex.worker import NO_CLAIM

# The harness lives beside this file; pytest's rootdir-relative import mode
# puts tests/executors/ on sys.path, so it imports as a top-level module.
from chaos import attach_process_manager, make_poison_task, make_sleeper, wait_for


@pytest.fixture
def htex_bare():
    """An HTEX with interchange but *no* managers; tests attach their own."""
    ex = HighThroughputExecutor(
        label="htex_crash",
        workers_per_node=2,
        internal_managers=0,
        heartbeat_period=0.25,
        heartbeat_threshold=30.0,
    )
    ex.start()
    yield ex
    ex.shutdown()


def _claimed_worker(manager):
    """(worker, task_id) for the first worker currently holding a claim."""
    for worker_id, worker in enumerate(manager._workers):
        claimed = manager._claims[worker_id]
        if claimed != NO_CLAIM:
            return worker, int(claimed)
    return None


class TestWorkerCrashContainment:
    def test_kill_mid_task_redispatches_and_completes(self, htex_bare):
        """SIGKILL a worker holding a task: the task still completes.

        The supervisor reads the dead worker's claim, synthesizes a loss,
        respawns the slot; the interchange charges the kill to the task and
        redispatches it (kill 1 < threshold), so the future resolves with the
        right answer — the caller never sees the crash.
        """
        manager = attach_process_manager(htex_bare.interchange, worker_count=2)
        try:
            assert wait_for(lambda: htex_bare.connected_workers >= 2)
            fut = htex_bare.submit(make_sleeper(1.5), {}, 42)
            found = wait_for(lambda: _claimed_worker(manager), timeout=10)
            assert found, "no worker ever claimed the task"
            worker, _claimed_task = found
            os.kill(worker.pid, signal.SIGKILL)
            assert fut.result(timeout=30) == 42
            assert manager.workers_lost >= 1
            assert manager.workers_respawned >= 1
            faults = htex_bare.interchange.fault_stats()
            assert faults["workers_lost"] >= 1
            assert faults["tasks_redispatched"] >= 1
            assert faults["tasks_poisoned"] == 0
            # Core-slot accounting converges back to zero on both sides.
            assert wait_for(lambda: htex_bare.interchange.fault_stats()["in_flight_cores"] == 0)
            assert wait_for(lambda: manager._in_flight == 0)
            # Every claim slot is clear once the dust settles.
            assert wait_for(
                lambda: all(manager._claims[i] == NO_CLAIM for i in range(manager.worker_count))
            )
        finally:
            manager.shutdown()

    def test_poison_task_quarantined_with_typed_error(self, htex_bare):
        """A task that os._exit()s its worker fails typed, within 2 kills."""
        manager = attach_process_manager(htex_bare.interchange, worker_count=2)
        try:
            assert wait_for(lambda: htex_bare.connected_workers >= 2)
            fut = htex_bare.submit(make_poison_task(13), {})
            with pytest.raises(WorkerPoisonError) as excinfo:
                fut.result(timeout=60)
            assert excinfo.value.kills == htex_bare.poison_threshold == 2
            faults = htex_bare.interchange.fault_stats()
            assert faults["tasks_poisoned"] == 1
            assert faults["workers_lost"] == 2  # exactly threshold kills, then quarantine
            # The pool healed: respawned workers still run healthy tasks.
            assert htex_bare.submit(make_sleeper(0.0), {}, "ok").result(timeout=30) == "ok"
            assert manager.workers_respawned >= 2
        finally:
            manager.shutdown()

    def test_respawn_budget_exhaustion_ends_in_manager_lost(self):
        """Budget 0: one worker death fells the manager; futures get ManagerLost.

        The manager must exit (stop heartbeating) rather than limp on with an
        empty pool, so the interchange's ManagerLost machinery settles
        whatever it held — the submitted future fails instead of hanging.
        """
        ex = HighThroughputExecutor(
            label="htex_budget",
            workers_per_node=1,
            internal_managers=0,
            heartbeat_period=0.2,
            heartbeat_threshold=1.5,
        )
        ex.start()
        manager = attach_process_manager(
            ex.interchange, worker_count=1, worker_respawn_limit=0, heartbeat_threshold=30.0
        )
        try:
            assert wait_for(lambda: ex.connected_workers >= 1)
            fut = ex.submit(make_sleeper(30.0), {})
            found = wait_for(lambda: _claimed_worker(manager), timeout=10)
            assert found
            os.kill(found[0].pid, signal.SIGKILL)
            # Supervisor flushes the synthesized loss, then stops the manager.
            assert wait_for(manager._stop_event.is_set, timeout=10)
            with pytest.raises(ManagerLost):
                fut.result(timeout=30)
            assert manager.workers_respawned == 0
            assert wait_for(lambda: ex.interchange.fault_stats()["managers_lost"] == 1)
            assert ex.interchange.fault_stats()["in_flight_cores"] == 0
        finally:
            manager.shutdown()
            ex.shutdown()

    def test_result_push_loop_eof_stops_manager(self):
        """A broken result queue must stop the manager, not be swallowed.

        Regression test for the silent ``break``: the loop now logs and sets
        the stop event, so the manager quits heartbeating and the interchange
        requeues its work instead of black-holing every in-flight task.
        """
        manager = Manager("127.0.0.1", 1, worker_mode="thread")

        class _BrokenQueue:
            def get(self, timeout=None):
                raise EOFError("feeder gone")

            def get_nowait(self):
                raise EOFError("feeder gone")

        manager._result_queue = _BrokenQueue()
        manager._client = types.SimpleNamespace(
            send=lambda m: True, send_many=lambda ms: True, close=lambda: None
        )
        manager._result_push_loop()  # returns (rather than spinning) on EOF
        assert manager._stop_event.is_set()


class TestWorkerLostProtocol:
    """Interchange-side handling of worker_lost items, via fake managers."""

    @staticmethod
    def _fake_manager(interchange, identity, block_id=None):
        return MessageClient(
            interchange.host,
            interchange.port,
            identity=identity,
            registration_info=msg.manager_registration_info(
                block_id=block_id or identity, hostname=identity, worker_count=1
            ),
        )

    @staticmethod
    def _await_tasks(client, timeout=5.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            message = client.recv(timeout=0.2)
            if message is not None and message.get("type") == "tasks":
                return message["items"]
        return None

    def test_worker_lost_without_survivors_fails_typed(self):
        """No eligible manager left: the task fails WorkerLost, not strands."""
        results = []
        interchange = Interchange(result_callback=results.append, heartbeat_threshold=60)
        interchange.start()
        client = self._fake_manager(interchange, "mgr-solo", block_id="blk-solo")
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 1)
            interchange.submit_task(3, b"payload")
            assert self._await_tasks(client) is not None
            # Draining managers are not survivors; with the only manager
            # draining, a requeue would strand the task in the pending queue.
            interchange.command("drain_block", block_id="blk-solo")
            client.send(msg.results_message([msg.worker_lost_item(3, 0, "hostx", 9)]))
            assert wait_for(lambda: len(results) == 1)
            exc = results[0]["exception"]
            assert isinstance(exc, WorkerLost)
            assert "exit code 9" in str(exc)
            assert interchange.fault_stats()["workers_lost"] == 1
        finally:
            client.close()
            interchange.stop()

    def test_second_kill_trips_poison_threshold(self):
        """Kill counts ride the task item across redispatches."""
        results = []
        interchange = Interchange(
            result_callback=results.append, heartbeat_threshold=60, poison_threshold=2
        )
        interchange.start()
        client = self._fake_manager(interchange, "mgr-p")
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 1)
            interchange.submit_task(11, b"payload")
            assert self._await_tasks(client) is not None
            client.send(msg.results_message([msg.worker_lost_item(11, 0, "hostp", 13)]))
            # Kill 1 < threshold: redispatched back to the (sole) manager.
            redelivered = self._await_tasks(client)
            assert redelivered is not None and redelivered[0]["task_id"] == 11
            assert redelivered[0]["worker_kills"] == 1
            client.send(msg.results_message([msg.worker_lost_item(11, 0, "hostp", 13)]))
            assert wait_for(lambda: len(results) == 1)
            exc = results[0]["exception"]
            assert isinstance(exc, WorkerPoisonError)
            assert exc.kills == 2
            stats = interchange.command("scheduling_stats")
            assert stats["faults"]["tasks_poisoned"] == 1
            assert stats["faults"]["workers_lost"] == 2
        finally:
            client.close()
            interchange.stop()

    def test_redispatch_exhaustion_mid_drain_fails_not_hangs(self):
        """Manager loss while every other manager drains: ManagerLost, fast.

        Redispatch budget alone is not enough to requeue — there must be a
        *non-draining* survivor. With the only other block mid-drain, the
        victim's in-flight task must fail with ManagerLost immediately
        instead of stranding in the pending queue forever.
        """
        results = []
        interchange = Interchange(
            result_callback=results.append, heartbeat_threshold=60, max_task_redispatches=5
        )
        interchange.start()
        a = self._fake_manager(interchange, "mgr-a", block_id="blk-a")
        b = self._fake_manager(interchange, "mgr-b", block_id="blk-b")
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 2)
            interchange.submit_task(21, b"payload")
            items = self._await_tasks(a)
            victim, victim_blk, survivor_blk = (a, "blk-a", "blk-b") if items else (b, "blk-b", "blk-a")
            if items is None:
                items = self._await_tasks(victim)
            assert items is not None
            interchange.command("drain_block", block_id=survivor_blk)
            victim.close()
            assert wait_for(lambda: len(results) == 1, timeout=15)
            assert results[0]["task_id"] == 21
            assert isinstance(results[0]["exception"], ManagerLost)
        finally:
            a.close()
            b.close()
            interchange.stop()
