"""Integration tests: the DataFlowKernel driving real executors end to end."""

import os
import time

import pytest

import repro
from repro import Config, File, python_app
from repro.data.object_store import get_default_store
from repro.errors import DependencyError
from repro.executors import HighThroughputExecutor, ThreadPoolExecutor
from repro.monitoring import MessageType, MonitoringHub, workflow_summary


def make_local_config(run_dir, **overrides):
    """A fast, fully local configuration (internal HTEX + thread pool)."""
    defaults = dict(
        executors=[
            HighThroughputExecutor(label="htex_local", workers_per_node=4, internal_managers=1),
            ThreadPoolExecutor(label="threads", max_threads=2),
        ],
        retries=0,
        run_dir=run_dir,
        strategy="none",
    )
    defaults.update(overrides)
    return Config(**defaults)


@python_app
def increment(x):
    return x + 1


@python_app
def add_all(*values):
    return sum(values)


@python_app
def fail_unless_marker(path):
    if not os.path.exists(path):
        with open(path, "w") as fh:
            fh.write("attempted")
        raise RuntimeError("transient failure")
    return "recovered"


@python_app
def always_raise():
    raise ValueError("permanent failure")


@python_app
def slow_value(x, delay=0.3):
    time.sleep(delay)
    return x


@python_app
def read_staged(inputs=None):
    with open(inputs[0].filepath) as fh:
        return fh.read().strip()


class TestDependencyGraph:
    def test_diamond_dependency(self, local_dfk):
        a = increment(0)
        b = increment(a)
        c = increment(a)
        d = add_all(b, c)
        assert d.result(timeout=30) == 4

    def test_wide_fanout_and_reduce(self, local_dfk):
        layer = [increment(i) for i in range(30)]
        total = add_all(*layer)
        assert total.result(timeout=60) == sum(range(1, 31))

    def test_deep_chain(self, local_dfk):
        fut = increment(0)
        for _ in range(15):
            fut = increment(fut)
        assert fut.result(timeout=60) == 16

    def test_futures_inside_lists(self, threads_dfk):
        @python_app
        def total(inputs=None):
            return sum(inputs)

        parts = [increment(i) for i in range(5)]
        assert total(inputs=parts).result(timeout=30) == sum(range(1, 6))

    def test_dependency_failure_propagates(self, threads_dfk):
        bad = always_raise()
        dependent = increment(bad)
        with pytest.raises(DependencyError):
            dependent.result(timeout=30)
        # The chain keeps propagating.
        second = increment(dependent)
        with pytest.raises(DependencyError):
            second.result(timeout=30)

    def test_task_summary_counts(self, threads_dfk):
        futures = [increment(i) for i in range(5)]
        for f in futures:
            f.result(timeout=30)
        threads_dfk.wait_for_current_tasks(timeout=30)
        summary = threads_dfk.task_summary()
        assert sum(summary.values()) >= 5


class TestRetriesAndFaultTolerance:
    def test_retry_recovers_transient_failure(self, run_dir, tmp_path):
        dfk = repro.load(make_local_config(run_dir, retries=2))
        try:
            marker = str(tmp_path / "marker.txt")
            assert fail_unless_marker(marker).result(timeout=60) == "recovered"
            record = dfk.tasks[0]
            assert record.fail_count == 1
        finally:
            repro.clear()

    def test_retries_exhausted_raises_original(self, run_dir):
        repro.load(make_local_config(run_dir, retries=1))
        try:
            with pytest.raises(ValueError, match="permanent failure"):
                always_raise().result(timeout=60)
        finally:
            repro.clear()

    def test_retry_pending_backoff_resolves_at_cleanup(self, run_dir):
        """A retry waiting out its backoff when the DFK shuts down must still
        resolve its AppFuture (with an error) rather than hang forever."""
        dfk = repro.load(make_local_config(run_dir, retries=1, retry_backoff_s=1.0))
        fut = always_raise()
        deadline = time.time() + 10
        while dfk.tasks[0].fail_count < 1 and time.time() < deadline:
            time.sleep(0.02)
        assert dfk.tasks[0].fail_count >= 1
        repro.clear()  # cleanup lands inside the 1s backoff window
        with pytest.raises(Exception):
            fut.result(timeout=10)

    def test_submit_after_cleanup_rejected(self, run_dir):
        from repro.errors import DataFlowKernelClosedError

        dfk = repro.load(make_local_config(run_dir))
        repro.clear()
        with pytest.raises(DataFlowKernelClosedError):
            dfk.submit(lambda: 1, app_args=())

    def test_spec_rejecting_executor_fails_fast_without_retries(self, run_dir):
        """LLEX's categorical spec rejection is deterministic too: it must
        not burn retries × backoff any more than an unsatisfiable spec."""
        from repro.executors.llex.executor import LowLatencyExecutor
        from repro.errors import UnsupportedFeatureError

        cfg = Config(
            executors=[LowLatencyExecutor(label="llex", internal_workers=1)],
            retries=2,
            retry_backoff_s=5.0,
            run_dir=run_dir,
            strategy="none",
        )
        dfk = repro.load(cfg)
        try:
            start = time.time()
            fut = increment(1, resource_spec={"priority": 1})
            with pytest.raises(UnsupportedFeatureError):
                fut.result(timeout=10)
            assert time.time() - start < 5
            assert dfk.tasks[0].fail_count == 1
        finally:
            repro.clear()

    def test_unsatisfiable_resource_spec_fails_fast_without_retries(self, run_dir):
        """A spec no manager can ever fit is deterministic: it must fail
        through the AppFuture immediately, not burn retries × backoff."""
        from repro.errors import ResourceSpecError

        dfk = repro.load(make_local_config(run_dir, retries=3, retry_backoff_s=5.0))
        try:
            start = time.time()
            # The spec's affinity pins the task to HTEX (the thread pool
            # would ignore a core request it cannot interpret).
            fut = increment(1, resource_spec={"cores": 99, "executors": ["htex_local"]})
            with pytest.raises(ResourceSpecError):
                fut.result(timeout=10)
            assert time.time() - start < 5, "unsatisfiable spec went through retry backoff"
            assert dfk.tasks[0].fail_count == 1  # one attempt, no retries
        finally:
            repro.clear()


class TestMemoizationAndCheckpointing:
    def test_memoization_within_run(self, run_dir):
        repro.load(make_local_config(run_dir))
        try:
            first = slow_value(7, delay=0.3)
            assert first.result(timeout=30) == 7
            start = time.perf_counter()
            second = slow_value(7, delay=0.3)
            assert second.result(timeout=30) == 7
            assert time.perf_counter() - start < 0.2
        finally:
            repro.clear()

    def test_checkpoint_reused_across_runs(self, run_dir, tmp_path):
        cfg1 = make_local_config(run_dir, checkpoint_mode="dfk_exit")
        dfk1 = repro.load(cfg1)
        slow_value(99, delay=0.3).result(timeout=30)
        run1_dir = dfk1.run_dir
        repro.clear()

        cfg2 = make_local_config(run_dir, checkpoint_files=[run1_dir])
        repro.load(cfg2)
        try:
            start = time.perf_counter()
            assert slow_value(99, delay=0.3).result(timeout=30) == 99
            assert time.perf_counter() - start < 0.2
        finally:
            repro.clear()

    def test_task_exit_checkpoints_append_o_delta(self, run_dir):
        """task_exit mode appends per-task deltas during the run (never
        rewriting the table), and cleanup collapses them into one snapshot."""
        import glob

        dfk = repro.load(make_local_config(run_dir, checkpoint_mode="task_exit"))
        run1_dir = dfk.run_dir
        delta_path = os.path.join(run1_dir, "checkpoint", "tasks.delta.pkl")
        snapshot_path = os.path.join(run1_dir, "checkpoint", "tasks.pkl")
        sizes = []
        try:
            for i in range(100, 105):
                # The delta append happens before the AppFuture resolves, so
                # the file is current as soon as result() returns.
                increment(i).result(timeout=30)
                sizes.append(os.path.getsize(delta_path))
            # Each completed task appended roughly one entry's worth of
            # bytes: growth per task must not scale with the table size.
            growths = [b - a for a, b in zip(sizes, sizes[1:])]
            assert all(g > 0 for g in growths)
            assert max(growths) <= 4 * sizes[0]
            # No full snapshot was written while the run was live.
            assert not os.path.exists(snapshot_path)
        finally:
            repro.clear()
        # Cleanup wrote the full snapshot and removed the delta log.
        assert os.path.exists(snapshot_path)
        assert not os.path.exists(delta_path)
        from repro.core.checkpoint import load_checkpoints

        assert len(load_checkpoints([run1_dir])) == 5
        assert glob.glob(os.path.join(run1_dir, "checkpoint", "*.tmp")) == []

    def test_manual_checkpoint_writes_file(self, run_dir):
        dfk = repro.load(make_local_config(run_dir, checkpoint_mode="manual"))
        try:
            increment(1).result(timeout=30)
            path = dfk.checkpoint()
            assert path is not None and os.path.exists(path)
        finally:
            repro.clear()


class TestMultiExecutor:
    def test_tasks_spread_across_executors(self, run_dir):
        dfk = repro.load(make_local_config(run_dir))
        try:
            futures = [increment(i) for i in range(40)]
            for f in futures:
                f.result(timeout=60)
            used = {t.executor for t in dfk.tasks.values()}
            assert used == {"htex_local", "threads"}
        finally:
            repro.clear()


class TestStagingIntegration:
    def test_http_input_staged_through_graph(self, run_dir):
        store = get_default_store()
        url = f"http://repro.test/inputs/{time.time()}.txt"
        store.put(url, b"staged-content")
        repro.load(make_local_config(run_dir))
        try:
            assert read_staged(inputs=[File(url)]).result(timeout=60) == "staged-content"
        finally:
            repro.clear()


class TestMonitoringIntegration:
    def test_states_recorded_per_task(self, run_dir):
        hub = MonitoringHub()
        repro.load(make_local_config(run_dir, monitoring=hub))
        try:
            futures = [increment(i) for i in range(5)]
            for f in futures:
                f.result(timeout=30)
        finally:
            repro.clear()
        rows = hub.query(MessageType.TASK_STATE)
        states = {r["state"] for r in rows}
        assert {"pending", "launched", "exec_done"} <= states
        summary = workflow_summary(hub)
        assert summary["tasks"] >= 5
        assert summary["final_state_counts"].get("exec_done", 0) >= 5


class TestElasticityIntegration:
    def test_strategy_scales_out_local_provider(self, run_dir, tmp_path):
        """The real strategy loop grows blocks under load (scaled-down Fig. 6 behaviour)."""
        from repro.providers import LocalProvider

        provider = LocalProvider(init_blocks=1, min_blocks=1, max_blocks=3,
                                 script_dir=str(tmp_path / "scripts"))
        htex = HighThroughputExecutor(
            label="htex_elastic", provider=provider, workers_per_node=1, heartbeat_threshold=15
        )
        cfg = Config(executors=[htex], run_dir=run_dir, strategy="simple", strategy_period=0.2, max_idletime=60)
        repro.load(cfg)
        try:
            futures = [slow_value(i, delay=1.0) for i in range(12)]
            deadline = time.time() + 20
            while time.time() < deadline and len(htex.blocks) < 2:
                time.sleep(0.2)
            assert len(htex.blocks) >= 2, "strategy never scaled out"
            for f in futures:
                f.result(timeout=120)
        finally:
            repro.clear()
