"""Tests for launchers: command-shape contracts plus real execution of the generated scripts."""

import subprocess

import pytest

from repro.launchers import (
    AprunLauncher,
    GnuParallelLauncher,
    MpiExecLauncher,
    SimpleLauncher,
    SingleNodeLauncher,
    SrunLauncher,
    WrappedLauncher,
)


def run_script(script: str) -> str:
    proc = subprocess.run(["/bin/sh", "-c", script], capture_output=True, text=True, timeout=20)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCommandShapes:
    def test_simple_launcher_passthrough(self):
        assert SimpleLauncher()("echo hi", 4, 2) == "echo hi"

    def test_single_node_launcher_replicates_per_slot(self):
        cmd = SingleNodeLauncher()("echo task", 3, 1)
        assert "CORES=3" in cmd and "wait" in cmd

    @pytest.mark.parametrize("launcher_cls,name", [(SrunLauncher, "srun"), (AprunLauncher, "aprun"), (MpiExecLauncher, "mpiexec")])
    def test_per_node_launchers_export_rank(self, launcher_cls, name):
        cmd = launcher_cls()("echo task", 2, 4)
        assert "NODES=4" in cmd
        assert "REPRO_NODE_RANK=$NODE" in cmd
        assert f"REPRO_LAUNCHER={name}" in cmd

    def test_wrapped_launcher_prepends(self):
        cmd = WrappedLauncher("singularity exec image.sif")("python worker.py", 1, 1)
        assert cmd == "singularity exec image.sif python worker.py"

    def test_gnu_parallel_total_slots(self):
        cmd = GnuParallelLauncher()("echo t", 3, 2)
        assert "TOTAL=6" in cmd


class TestRealExecution:
    # The worker command is a subshell so the per-copy environment variables
    # (REPRO_NODE_RANK and friends) are read at run time, exactly as a real
    # worker-pool process would read them.
    def test_single_node_launcher_runs_all_copies(self):
        out = run_script(SingleNodeLauncher()("sh -c 'echo RANK-$REPRO_LOCAL_RANK'", 3, 1))
        ranks = sorted(line for line in out.splitlines() if line.startswith("RANK-"))
        assert ranks == ["RANK-0", "RANK-1", "RANK-2"]

    def test_srun_launcher_runs_one_copy_per_node(self):
        out = run_script(SrunLauncher()("sh -c 'echo NODE-$REPRO_NODE_RANK'", 1, 3))
        nodes = sorted(line for line in out.splitlines() if line.startswith("NODE-"))
        assert nodes == ["NODE-0", "NODE-1", "NODE-2"]

    def test_gnu_parallel_runs_node_rank_pairs(self):
        out = run_script(GnuParallelLauncher()("sh -c 'echo PAIR-$REPRO_NODE_RANK-$REPRO_LOCAL_RANK'", 2, 2))
        pairs = sorted(line for line in out.splitlines() if line.startswith("PAIR-"))
        assert pairs == ["PAIR-0-0", "PAIR-0-1", "PAIR-1-0", "PAIR-1-1"]
