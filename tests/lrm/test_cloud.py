"""Tests for the simulated cloud control plane."""

import time

import pytest

from repro.errors import SubmitException
from repro.lrm.cloud import CloudSim, InstanceState


@pytest.fixture
def cloud(tmp_path):
    sim = CloudSim(
        name="testcloud",
        provisioning_delay_s=0.05,
        capacity=4,
        execute_instances=False,
        working_dir=str(tmp_path / "cloud"),
        seed=1,
    )
    yield sim
    sim.shutdown()


class TestInstances:
    def test_lifecycle(self, cloud):
        iid = cloud.request_instance("t2.micro")
        assert cloud.describe([iid])[iid] == InstanceState.PENDING
        time.sleep(0.2)
        assert cloud.describe([iid])[iid] == InstanceState.RUNNING
        cloud.terminate([iid])
        assert cloud.describe([iid])[iid] == InstanceState.TERMINATED

    def test_unknown_instance_type(self, cloud):
        with pytest.raises(SubmitException):
            cloud.request_instance("quantum.enormous")

    def test_capacity_limit(self, cloud):
        for _ in range(4):
            cloud.request_instance("t2.micro")
        with pytest.raises(SubmitException):
            cloud.request_instance("t2.micro")

    def test_spot_bid_below_market_rejected(self, cloud):
        with pytest.raises(SubmitException):
            cloud.request_instance("c5.xlarge", spot=True, spot_bid=0.000001)

    def test_active_count(self, cloud):
        ids = [cloud.request_instance("t2.micro") for _ in range(2)]
        assert cloud.active_count() == 2
        cloud.terminate(ids)
        assert cloud.active_count() == 0

    def test_cost_accumulation(self, cloud):
        iid = cloud.request_instance("c5.9xlarge")
        time.sleep(0.2)
        cloud.terminate([iid])
        assert cloud.accumulated_cost() > 0

    def test_execute_instances_run_command(self, tmp_path):
        sim = CloudSim(
            name="execcloud",
            provisioning_delay_s=0.05,
            execute_instances=True,
            working_dir=str(tmp_path / "execcloud"),
        )
        try:
            marker = tmp_path / "cloud_ran.txt"
            sim.request_instance("t2.micro", command=f"echo up > {marker}")
            deadline = time.time() + 5
            while time.time() < deadline and not marker.exists():
                time.sleep(0.05)
            assert marker.exists()
        finally:
            sim.shutdown()

    def test_spot_preemption(self, tmp_path):
        sim = CloudSim(
            name="spotcloud",
            provisioning_delay_s=0.01,
            execute_instances=False,
            preemption_rate_per_s=50.0,
            working_dir=str(tmp_path / "spot"),
            seed=7,
        )
        try:
            iid = sim.request_instance("t2.micro", spot=True)
            deadline = time.time() + 5
            while time.time() < deadline:
                if sim.describe([iid])[iid] == InstanceState.PREEMPTED:
                    break
                time.sleep(0.05)
            assert sim.describe([iid])[iid] == InstanceState.PREEMPTED
        finally:
            sim.shutdown()
