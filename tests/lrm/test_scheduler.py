"""Tests for the simulated batch scheduler."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InsufficientResources, JobNotFoundError, SubmitException
from repro.lrm import BatchSchedulerSim, PartitionSpec, SimJobState, parse_walltime


@pytest.fixture
def sim(tmp_path):
    scheduler = BatchSchedulerSim(
        name="testlrm",
        partitions=[
            PartitionSpec(name="small", total_nodes=4, max_nodes_per_job=2, cores_per_node=4),
            PartitionSpec(name="big", total_nodes=16, queue_delay_s=0.0),
        ],
        execute_jobs=False,
        poll_interval=0.02,
        working_dir=str(tmp_path / "lrm"),
    )
    yield scheduler
    scheduler.shutdown()


class TestWalltimeParsing:
    def test_formats(self):
        assert parse_walltime("01:00:00") == 3600
        assert parse_walltime("00:30:00") == 1800
        assert parse_walltime("10:30") == 630
        assert parse_walltime("45") == 45
        assert parse_walltime("1-01:00:00") == 90000

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_walltime("1:2:3:4")

    @given(st.integers(0, 23), st.integers(0, 59), st.integers(0, 59))
    @settings(max_examples=50, deadline=None)
    def test_hms_roundtrip(self, h, m, s):
        assert parse_walltime(f"{h:02d}:{m:02d}:{s:02d}") == h * 3600 + m * 60 + s


class TestSubmission:
    def test_job_lifecycle(self, sim):
        job_id = sim.submit("echo hi", nodes=2, walltime="00:01:00", partition="big")
        time.sleep(0.1)
        assert sim.status([job_id])[job_id] == SimJobState.RUNNING
        assert sim.cancel([job_id]) == [True]
        assert sim.status([job_id])[job_id] == SimJobState.CANCELLED

    def test_unknown_partition(self, sim):
        with pytest.raises(SubmitException):
            sim.submit("echo", nodes=1, partition="nope")

    def test_too_many_nodes(self, sim):
        with pytest.raises(InsufficientResources):
            sim.submit("echo", nodes=100, partition="big")

    def test_per_job_node_limit(self, sim):
        with pytest.raises(SubmitException):
            sim.submit("echo", nodes=3, partition="small")

    def test_unknown_job_id(self, sim):
        with pytest.raises(JobNotFoundError):
            sim.status(["testlrm.999"])

    def test_cancel_unknown_job(self, sim):
        assert sim.cancel(["testlrm.999"]) == [False]

    def test_fcfs_waits_for_free_nodes(self, sim):
        first = sim.submit("sleep", nodes=16, walltime="00:01:00", partition="big")
        second = sim.submit("sleep", nodes=16, walltime="00:01:00", partition="big")
        time.sleep(0.1)
        states = sim.status([first, second])
        assert states[first] == SimJobState.RUNNING
        assert states[second] == SimJobState.PENDING
        sim.cancel([first])
        time.sleep(0.1)
        assert sim.status([second])[second] == SimJobState.RUNNING

    def test_hold_and_release(self, sim):
        job_id = sim.submit("echo", nodes=1, partition="big")
        sim.hold(job_id)
        time.sleep(0.05)
        # A held job is not scheduled even with free nodes.
        if sim.status([job_id])[job_id] == SimJobState.HELD:
            sim.release(job_id)
            time.sleep(0.1)
            assert sim.status([job_id])[job_id] == SimJobState.RUNNING

    def test_node_accounting(self, sim):
        sim.submit("x", nodes=2, partition="big")
        sim.submit("y", nodes=4, partition="big")
        time.sleep(0.1)
        assert sim.nodes_in_use("big") == 6
        assert sim.free_nodes("big") == 10

    def test_queue_delay_respected(self, tmp_path):
        scheduler = BatchSchedulerSim(
            name="delaylrm",
            partitions=[PartitionSpec(name="q", total_nodes=2, queue_delay_s=0.3)],
            execute_jobs=False,
            poll_interval=0.02,
            working_dir=str(tmp_path / "lrm2"),
        )
        try:
            job_id = scheduler.submit("echo", nodes=1, partition="q")
            time.sleep(0.1)
            assert scheduler.status([job_id])[job_id] == SimJobState.PENDING
            time.sleep(0.4)
            assert scheduler.status([job_id])[job_id] == SimJobState.RUNNING
        finally:
            scheduler.shutdown()


class TestExecutionAndWalltime:
    def test_real_execution_completes(self, tmp_path):
        scheduler = BatchSchedulerSim(
            name="execlrm",
            partitions=[PartitionSpec(name="q", total_nodes=2)],
            execute_jobs=True,
            poll_interval=0.02,
            working_dir=str(tmp_path / "lrm3"),
        )
        try:
            marker = tmp_path / "ran.txt"
            job_id = scheduler.submit(f"echo done > {marker}", nodes=1, partition="q")
            deadline = time.time() + 5
            while time.time() < deadline:
                if scheduler.status([job_id])[job_id] == SimJobState.COMPLETED:
                    break
                time.sleep(0.05)
            assert scheduler.status([job_id])[job_id] == SimJobState.COMPLETED
            assert marker.read_text().strip() == "done"
        finally:
            scheduler.shutdown()

    def test_walltime_enforcement(self, tmp_path):
        scheduler = BatchSchedulerSim(
            name="wtlrm",
            partitions=[PartitionSpec(name="q", total_nodes=2)],
            execute_jobs=True,
            poll_interval=0.02,
            working_dir=str(tmp_path / "lrm4"),
        )
        try:
            job_id = scheduler.submit("sleep 30", nodes=1, walltime="1", partition="q")
            deadline = time.time() + 6
            while time.time() < deadline:
                if scheduler.status([job_id])[job_id] == SimJobState.TIMEOUT:
                    break
                time.sleep(0.1)
            assert scheduler.status([job_id])[job_id] == SimJobState.TIMEOUT
        finally:
            scheduler.shutdown()


class TestDirectiveParsing:
    def test_slurm_directives(self, sim):
        script = "\n".join(
            [
                "#!/bin/sh",
                "#SBATCH --job-name=blk",
                "#SBATCH --nodes=2",
                "#SBATCH --time=00:10:00",
                "#SBATCH --partition=big",
                "echo hi",
            ]
        )
        job_id = sim.submit_script(script, dialect="slurm")
        job = sim.get_job(job_id)
        assert job.nodes == 2
        assert job.walltime_s == 600
        assert job.partition == "big"
        assert job.job_name == "blk"

    def test_pbs_directives(self, sim):
        script = "#PBS -N myjob\n#PBS -l nodes=2\n#PBS -l walltime=00:05:00\n#PBS -q big\nsleep 1\n"
        job = sim.get_job(sim.submit_script(script, dialect="pbs"))
        assert (job.nodes, job.walltime_s, job.partition) == (2, 300, "big")

    def test_cobalt_directives(self, sim):
        script = "#COBALT --nodecount=2\n#COBALT --time 00:02:00\n#COBALT -q big\nhostname\n"
        job = sim.get_job(sim.submit_script(script, dialect="cobalt"))
        assert (job.nodes, job.walltime_s) == (2, 120)

    def test_condor_directives(self, sim):
        script = "#CONDOR nodecount = 2\n#CONDOR walltime=00:02:00\n#CONDOR queue = big\nhostname\n"
        job = sim.get_job(sim.submit_script(script, dialect="condor"))
        assert job.nodes == 2

    def test_unknown_dialect(self, sim):
        with pytest.raises(SubmitException):
            sim.submit_script("echo", dialect="lsf")
