"""Tests for monitoring stores, the hub, and post-run reports."""

import time

import pytest

from repro.monitoring import (
    InMemoryStore,
    MessageType,
    MonitoringHub,
    SQLiteStore,
    format_summary_text,
    task_state_timeline,
    workflow_summary,
)
from repro.monitoring.messages import MonitoringMessage


class TestStores:
    def test_inmemory_insert_query(self):
        store = InMemoryStore()
        store.insert(MonitoringMessage(MessageType.TASK_STATE, {"task_id": 1, "state": "pending"}))
        store.insert(MonitoringMessage(MessageType.TASK_STATE, {"task_id": 2, "state": "running"}))
        store.insert(MonitoringMessage(MessageType.RESOURCE_INFO, {"task_id": 1, "cpu": 0.1}))
        assert len(store.query(MessageType.TASK_STATE)) == 2
        assert store.query(MessageType.TASK_STATE, task_id=2)[0]["state"] == "running"
        assert len(store) == 3

    def test_sqlite_store_roundtrip(self, tmp_path):
        store = SQLiteStore(str(tmp_path / "monitoring.db"))
        store.insert(MonitoringMessage(MessageType.TASK_STATE, {"run_id": "r1", "task_id": 7, "state": "exec_done"}))
        store.insert(MonitoringMessage(MessageType.WORKFLOW_INFO, {"run_id": "r1", "tasks": 10}))
        rows = store.query(MessageType.TASK_STATE, run_id="r1")
        assert rows[0]["task_id"] == 7 and rows[0]["state"] == "exec_done"
        assert store.query(MessageType.WORKFLOW_INFO)[0]["tasks"] == 10
        store.close()

    def test_sqlite_persists_across_connections(self, tmp_path):
        path = str(tmp_path / "persist.db")
        store = SQLiteStore(path)
        store.insert(MonitoringMessage(MessageType.TASK_STATE, {"task_id": 1, "state": "pending"}))
        store.close()
        reopened = SQLiteStore(path)
        assert len(reopened.query(MessageType.TASK_STATE)) == 1
        reopened.close()


class TestHub:
    def test_messages_reach_store(self):
        hub = MonitoringHub()
        hub.start()
        hub.send(MessageType.TASK_STATE, {"task_id": 1, "state": "pending"})
        hub.send(MessageType.TASK_STATE, {"task_id": 1, "state": "exec_done"})
        hub.close()
        assert len(hub.query(MessageType.TASK_STATE)) == 2

    def test_resource_messages_suppressed_when_disabled(self):
        hub = MonitoringHub(resource_monitoring_enabled=False)
        hub.start()
        hub.send(MessageType.RESOURCE_INFO, {"task_id": 1})
        hub.send(MessageType.TASK_STATE, {"task_id": 1, "state": "pending"})
        hub.close()
        assert hub.query(MessageType.RESOURCE_INFO) == []
        assert len(hub.query(MessageType.TASK_STATE)) == 1

    def test_send_after_close_is_noop(self):
        hub = MonitoringHub()
        hub.start()
        hub.close()
        hub.send(MessageType.TASK_STATE, {"task_id": 5, "state": "pending"})
        assert hub.query(MessageType.TASK_STATE, task_id=5) == []

    def test_context_manager(self):
        with MonitoringHub() as hub:
            hub.send(MessageType.NODE_INFO, {"hostname": "n0"})
        assert len(hub.query(MessageType.NODE_INFO)) == 1


class TestBatching:
    """TASK_STATE traffic is coalesced into size/interval-bounded batches."""

    def test_flush_on_batch_size(self):
        hub = MonitoringHub(batch_size=3, batch_flush_interval=60.0)
        hub.start()
        try:
            for task_id in range(3):
                hub.send(MessageType.TASK_STATE, {"task_id": task_id, "state": "pending"})
            deadline = time.time() + 5
            while time.time() < deadline and len(hub.store) < 3:
                time.sleep(0.01)
            # The size threshold flushed without waiting for the interval.
            assert len(hub.query(MessageType.TASK_STATE)) == 3
        finally:
            hub.close()

    def test_flush_on_interval(self):
        hub = MonitoringHub(batch_size=10_000, batch_flush_interval=0.02)
        hub.start()
        try:
            hub.send(MessageType.TASK_STATE, {"task_id": 1, "state": "pending"})
            deadline = time.time() + 5
            while time.time() < deadline and len(hub.store) < 1:
                time.sleep(0.01)
            assert len(hub.query(MessageType.TASK_STATE)) == 1
        finally:
            hub.close()

    def test_close_flushes_partial_batch(self):
        hub = MonitoringHub(batch_size=10_000, batch_flush_interval=60.0)
        hub.start()
        hub.send(MessageType.TASK_STATE, {"task_id": 7, "state": "pending"})
        hub.close()
        assert len(hub.query(MessageType.TASK_STATE)) == 1

    def test_low_volume_types_preserve_global_order(self):
        hub = MonitoringHub(batch_size=10_000, batch_flush_interval=60.0)
        hub.start()
        hub.send(MessageType.TASK_STATE, {"task_id": 1, "state": "pending"})
        hub.send(MessageType.WORKFLOW_INFO, {"run_id": "r1"})
        hub.close()
        rows = hub.query()
        types = [r["message_type"] for r in rows]
        assert types.index(MessageType.TASK_STATE.value) < types.index(MessageType.WORKFLOW_INFO.value)

    def test_batch_size_one_disables_coalescing(self):
        hub = MonitoringHub(batch_size=1, batch_flush_interval=60.0)
        hub.start()
        hub.send(MessageType.TASK_STATE, {"task_id": 1, "state": "pending"})
        deadline = time.time() + 5
        while time.time() < deadline and len(hub.store) < 1:
            time.sleep(0.01)
        assert len(hub.query(MessageType.TASK_STATE)) == 1
        hub.close()

    def test_invalid_batch_settings_rejected(self):
        with pytest.raises(ValueError):
            MonitoringHub(batch_size=0)
        with pytest.raises(ValueError):
            MonitoringHub(batch_flush_interval=0)

    def test_sqlite_insert_many_mixed_types(self, tmp_path):
        store = SQLiteStore(str(tmp_path / "batch.db"))
        messages = [
            MonitoringMessage(MessageType.TASK_STATE, {"run_id": "r1", "task_id": i, "state": "pending"})
            for i in range(10)
        ] + [MonitoringMessage(MessageType.WORKFLOW_INFO, {"run_id": "r1", "tasks": 10})]
        store.insert_many(messages)
        assert len(store.query(MessageType.TASK_STATE, run_id="r1")) == 10
        assert store.query(MessageType.WORKFLOW_INFO)[0]["tasks"] == 10
        store.close()

    def test_inmemory_insert_many(self):
        store = InMemoryStore()
        store.insert_many(
            [MonitoringMessage(MessageType.TASK_STATE, {"task_id": i, "state": "pending"}) for i in range(4)]
        )
        assert len(store) == 4


class TestReports:
    def _populated_hub(self):
        hub = MonitoringHub()
        hub.start()
        for task_id in range(3):
            for offset, state in enumerate(["pending", "launched", "running", "exec_done"]):
                hub.send(
                    MessageType.TASK_STATE,
                    {"run_id": "r1", "task_id": task_id, "state": state},
                )
        hub.send(MessageType.RESOURCE_INFO, {"run_id": "r1", "task_id": 0,
                                             "psutil_process_time_user": 0.5,
                                             "psutil_process_memory_resident_kb": 1000.0})
        hub.close()
        return hub

    def test_timeline_orders_events(self):
        hub = self._populated_hub()
        timeline = task_state_timeline(hub, run_id="r1")
        assert set(timeline) == {0, 1, 2}
        assert [e["state"] for e in timeline[0]] == ["pending", "launched", "running", "exec_done"]

    def test_workflow_summary(self):
        hub = self._populated_hub()
        summary = workflow_summary(hub, run_id="r1")
        assert summary["tasks"] == 3
        assert summary["final_state_counts"] == {"exec_done": 3}
        assert summary["resource_records"] == 1
        assert summary["total_cpu_user_s"] == pytest.approx(0.5)

    def test_text_report(self):
        hub = self._populated_hub()
        text = format_summary_text(hub, run_id="r1")
        assert "tasks:" in text and "exec_done" in text


class TestTimelineSeqOrdering:
    """Regression: same-timestamp transitions must sort by hub seq.

    Fast executors routinely log ``launched`` -> ``running`` -> ``exec_done``
    within one clock tick; sorting by timestamp alone made their timeline
    order arbitrary (whatever the store returned). The hub stamps a
    send-order ``seq`` into every payload, and reports sort by
    ``(timestamp, seq)``.
    """

    def test_identical_timestamps_order_by_seq(self):
        store = InMemoryStore()
        t = 1000.0
        states = ["pending", "launched", "running", "exec_done"]
        # Insert in a scrambled order: only seq can restore the truth.
        for seq in (2, 0, 3, 1):
            store.insert(
                MonitoringMessage(
                    MessageType.TASK_STATE,
                    {"run_id": "r1", "task_id": 1, "state": states[seq], "seq": seq},
                    timestamp=t,
                )
            )
        hub = MonitoringHub(store=store)
        timeline = task_state_timeline(hub, run_id="r1")
        assert [e["state"] for e in timeline[1]] == states

    def test_rows_without_seq_sort_first_within_a_tick(self):
        """Pre-seq databases keep working: a missing seq sorts as -1."""
        store = InMemoryStore()
        store.insert(
            MonitoringMessage(
                MessageType.TASK_STATE,
                {"run_id": "r1", "task_id": 2, "state": "launched", "seq": 0},
                timestamp=5.0,
            )
        )
        store.insert(
            MonitoringMessage(
                MessageType.TASK_STATE,
                {"run_id": "r1", "task_id": 2, "state": "pending"},  # no seq
                timestamp=5.0,
            )
        )
        hub = MonitoringHub(store=store)
        timeline = task_state_timeline(hub, run_id="r1")
        assert [e["state"] for e in timeline[2]] == ["pending", "launched"]

    def test_timestamp_still_dominates_across_ticks(self):
        store = InMemoryStore()
        store.insert(
            MonitoringMessage(
                MessageType.TASK_STATE,
                {"run_id": "r1", "task_id": 3, "state": "exec_done", "seq": 0},
                timestamp=10.0,
            )
        )
        store.insert(
            MonitoringMessage(
                MessageType.TASK_STATE,
                {"run_id": "r1", "task_id": 3, "state": "pending", "seq": 99},
                timestamp=1.0,
            )
        )
        hub = MonitoringHub(store=store)
        timeline = task_state_timeline(hub, run_id="r1")
        assert [e["state"] for e in timeline[3]] == ["pending", "exec_done"]


class TestSchedulingFields:
    def test_task_state_rows_carry_priority_and_placed_manager(self, run_dir):
        """The DFK's TASK_STATE rows expose the scheduling subsystem's
        placement decisions: the task's priority and, once it has run,
        the manager that executed it."""
        import repro
        from repro import Config, python_app
        from repro.executors import HighThroughputExecutor

        store = InMemoryStore()
        hub = MonitoringHub(store=store)
        dfk = repro.load(
            Config(
                executors=[
                    HighThroughputExecutor(label="htex_mon", workers_per_node=2, worker_mode="thread")
                ],
                monitoring=hub,
                run_dir=run_dir,
                strategy="none",
            )
        )

        @python_app(data_flow_kernel=dfk)
        def double(x):
            return 2 * x

        assert double(3, priority=4).result(timeout=30) == 6
        repro.clear()

        done = store.query(MessageType.TASK_STATE, state="exec_done")
        assert len(done) == 1
        assert done[0]["priority"] == 4
        assert done[0]["manager"], "TASK_STATE row is missing the placed manager"
        # The pending row predates placement: priority known, manager not yet.
        pending = store.query(MessageType.TASK_STATE, state="pending")
        assert pending[0]["priority"] == 4
        assert pending[0]["manager"] is None
