"""Tests for the simulated MPI layer."""

import time

import pytest

from repro.mpisim import ANY_SOURCE, ANY_TAG, MPIAbort, launch_processes, launch_threads
from repro.mpisim.communicator import JobState, SimComm
import queue
import threading


def _make_comms(size):
    state = JobState(size, queue_factory=queue.Queue, barrier_factory=lambda n: threading.Barrier(n))
    return [SimComm(rank, state) for rank in range(size)]


class TestPointToPoint:
    def test_send_recv(self):
        c0, c1 = _make_comms(2)
        c0.send({"x": 1}, dest=1, tag=5)
        assert c1.recv(source=0, tag=5) == {"x": 1}

    def test_tag_matching_buffers_other_messages(self):
        c0, c1 = _make_comms(2)
        c0.send("first", dest=1, tag=1)
        c0.send("second", dest=1, tag=2)
        assert c1.recv(source=0, tag=2) == "second"
        assert c1.recv(source=0, tag=1) == "first"

    def test_any_source_any_tag(self):
        comms = _make_comms(3)
        comms[1].send("from1", dest=0, tag=7)
        comms[2].send("from2", dest=0, tag=9)
        received = {comms[0].recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(2)}
        assert received == {"from1", "from2"}

    def test_recv_timeout(self):
        (c0,) = _make_comms(1)
        with pytest.raises(TimeoutError):
            c0.recv(timeout=0.1)

    def test_iprobe(self):
        c0, c1 = _make_comms(2)
        assert c1.iprobe(source=0, tag=3) is False
        c0.send("msg", dest=1, tag=3)
        time.sleep(0.01)
        assert c1.iprobe(source=0, tag=3) is True

    def test_bad_destination(self):
        c0, = _make_comms(1)
        with pytest.raises(ValueError):
            c0.send("x", dest=5)


class TestCollectives:
    def _run_job(self, size, fn):
        job = launch_threads(size, fn)
        job.wait()
        assert not job.errors, job.errors
        return job.results

    def test_bcast(self):
        def fn(comm):
            value = comm.bcast("payload" if comm.rank == 0 else None, root=0)
            return value

        results = self._run_job(4, fn)
        assert all(v == "payload" for v in results.values())

    def test_scatter_gather(self):
        def fn(comm):
            chunk = comm.scatter([i * 10 for i in range(comm.size)] if comm.rank == 0 else None, root=0)
            gathered = comm.gather(chunk + 1, root=0)
            return gathered

        results = self._run_job(4, fn)
        assert results[0] == [1, 11, 21, 31]
        assert results[1] is None

    def test_scatter_requires_correct_length(self):
        def fn(comm):
            if comm.rank == 0:
                try:
                    comm.scatter([1], root=0)
                except ValueError:
                    # Unblock the other rank so the job terminates cleanly.
                    comm.send(None, dest=1, tag=comm._COLLECTIVE_TAG - 1)
                    return "raised"
            else:
                comm.recv(source=0, tag=comm._COLLECTIVE_TAG - 1)
                return "ok"

        results = self._run_job(2, fn)
        assert results[0] == "raised"

    def test_barrier(self):
        order = []

        def fn(comm):
            if comm.rank == 0:
                time.sleep(0.1)
            comm.barrier()
            order.append(comm.rank)
            return True

        self._run_job(3, fn)
        assert len(order) == 3


class TestAbortAndProcesses:
    def test_abort_propagates(self):
        def fn(comm):
            if comm.rank == 0:
                comm.abort(errorcode=3)
            else:
                comm.recv(source=0, timeout=5)

        job = launch_threads(2, fn)
        job.wait()
        assert all(isinstance(e, MPIAbort) for e in job.errors.values())
        assert len(job.errors) == 2

    def test_launch_processes_roundtrip(self):
        job = launch_processes(3, _process_entry)
        job.wait(timeout=30)
        assert job.results[0] == [0, 2, 4]

    def test_job_is_alive_and_terminate(self):
        job = launch_threads(2, _sleepy_entry)
        assert job.is_alive()
        job.terminate()


def _process_entry(comm):
    gathered = comm.gather(comm.rank * 2, root=0)
    return gathered


def _sleepy_entry(comm):
    time.sleep(0.3)
    return comm.rank
