"""Unit tests for the streaming straggler detector.

A fake clock drives both the model (completed hop-to-completion times) and
the live scan, so every threshold crossing is deterministic.
"""

import pytest

from repro.observability.anomaly import StragglerDetector


class FakeClock:
    def __init__(self, t: float = 1_000_000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_trace(trace_id, events, manager=None, task=1):
    trace = {"id": trace_id, "task": task, "attempt": 1,
             "events": [list(e) for e in events], "flushed": 0}
    if manager is not None:
        trace["manager"] = manager
    return trace


def feed_completions(detector, clock, n, hop_duration=0.01):
    """n healthy completions: submitted -> dispatched -> delivered."""
    for i in range(n):
        t0 = clock.t - 1.0
        detector.complete(make_trace(
            f"trace-ok{i}",
            [("submitted", t0), ("dispatched", t0 + hop_duration),
             ("delivered", t0 + 2 * hop_duration)],
        ))


class TestStragglerDetector:
    def _detector(self, **kwargs):
        clock = FakeClock()
        defaults = dict(factor=2.0, min_age_s=0.05, min_samples=5,
                        time_fn=clock)
        defaults.update(kwargs)
        return StragglerDetector(**defaults), clock

    def test_empty_model_flags_nothing(self):
        detector, clock = self._detector()
        stuck = make_trace("trace-x", [("dispatched", clock.t - 100.0)])
        assert detector.scan([(stuck, {"tenant": "t"})]) == []

    def test_min_samples_guard(self):
        detector, clock = self._detector(min_samples=10)
        feed_completions(detector, clock, 9)
        stuck = make_trace("trace-x", [("dispatched", clock.t - 100.0)])
        assert detector.scan([(stuck, {"tenant": "t"})]) == []
        feed_completions(detector, clock, 1)
        assert len(detector.scan([(stuck, {"tenant": "t"})])) == 1

    def test_slow_live_task_is_flagged_with_attribution(self):
        detector, clock = self._detector()
        feed_completions(detector, clock, 20)
        assert detector.completed_count() == 20
        stuck = make_trace(
            "trace-stuck",
            [("submitted", clock.t - 10.0), ("dispatched", clock.t - 9.0)],
            manager="mgr-7", task=42,
        )
        (row,) = detector.scan([(stuck, {"tenant": "interactive"})])
        assert row["trace_id"] == "trace-stuck"
        assert row["task"] == 42
        assert row["tenant"] == "interactive"
        assert row["hop"] == "dispatched"
        assert row["worker"] == "mgr-7"
        assert row["age_s"] == pytest.approx(9.0, abs=0.01)
        assert row["over"] > 1.0

    def test_healthy_live_task_is_not_flagged(self):
        detector, clock = self._detector()
        feed_completions(detector, clock, 20, hop_duration=0.01)
        fresh = make_trace("trace-fresh", [("dispatched", clock.t - 0.001)])
        assert detector.scan([(fresh, {"tenant": "t"})]) == []

    def test_min_age_floors_the_threshold(self):
        # With microsecond p99s, only min_age_s keeps sub-min_age tasks safe.
        detector, clock = self._detector(min_age_s=1.0)
        feed_completions(detector, clock, 20, hop_duration=0.0001)
        waiting = make_trace("trace-w", [("dispatched", clock.t - 0.5)])
        assert detector.scan([(waiting, {"tenant": "t"})]) == []
        stuck = make_trace("trace-s", [("dispatched", clock.t - 2.0)])
        assert len(detector.scan([(stuck, {"tenant": "t"})])) == 1

    def test_scan_sorts_by_overage_and_truncates(self):
        detector, clock = self._detector()
        feed_completions(detector, clock, 20)
        live = [
            (make_trace(f"trace-{i}", [("dispatched", clock.t - age)]),
             {"tenant": "t"})
            for i, age in enumerate([5.0, 50.0, 20.0])
        ]
        rows = detector.scan(live)
        assert [r["trace_id"] for r in rows] == ["trace-1", "trace-2", "trace-0"]
        assert len(detector.scan(live, limit=2)) == 2

    def test_model_window_expires(self):
        detector, clock = self._detector(window_s=60.0)
        feed_completions(detector, clock, 20)
        assert detector.hop_p99("dispatched") is not None
        clock.advance(120.0)
        stuck = make_trace("trace-x", [("dispatched", clock.t - 100.0)])
        assert detector.scan([(stuck, {"tenant": "t"})]) == []

    def test_traceless_and_short_traces_are_ignored(self):
        detector, clock = self._detector()
        detector.complete(None)
        detector.complete({"events": []})
        detector.complete(make_trace("trace-1hop", [("submitted", clock.t)]))
        assert detector.completed_count() == 0
        assert detector.scan([(None, {}), ({"events": []}, {})]) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StragglerDetector(factor=0)
        with pytest.raises(ValueError):
            StragglerDetector(min_samples=0)
        with pytest.raises(ValueError):
            StragglerDetector(min_age_s=-1)
        with pytest.raises(ValueError):
            StragglerDetector(window_s=0)


class TestWorkerReport:
    def test_concentration_names_the_sick_worker(self):
        stragglers = (
            [{"worker": "mgr-bad"} for _ in range(4)]
            + [{"worker": "mgr-ok"}]
        )
        report = StragglerDetector.worker_report(stragglers)
        assert report[0] == {"worker": "mgr-bad", "stragglers": 4, "sick": True}
        assert report[1]["sick"] is False

    def test_spread_out_stragglers_name_nobody(self):
        stragglers = [{"worker": f"mgr-{i}"} for i in range(6)]
        report = StragglerDetector.worker_report(stragglers)
        assert all(not row["sick"] for row in report)

    def test_unattributed_rows_are_skipped(self):
        assert StragglerDetector.worker_report([{"worker": None}, {}]) == []
