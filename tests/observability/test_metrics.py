"""Unit tests for the dependency-free metrics registry.

Covers the three metric kinds, callback-valued absorption, the same-child
guarantee on re-registration, the summary/render views, the null registry,
and multi-registry merge semantics in ``render_prometheus``.
"""

import threading

import pytest

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    render_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help")
        assert c.value() == 0.0
        c.inc()
        c.inc(4)
        assert c.value() == 5.0

    def test_callback_counter_reads_at_render_time(self):
        source = {"n": 0}
        reg = MetricsRegistry()
        c = reg.counter("repro_cb_total", callback=lambda: source["n"])
        source["n"] = 7
        assert c.value() == 7.0
        assert "repro_cb_total 7" in reg.render()

    def test_callback_exception_reads_zero(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_bad_total", callback=lambda: 1 / 0)
        assert c.value() == 0.0
        # The scrape must survive a dying callback too.
        assert "repro_bad_total 0" in reg.render()

    def test_same_child_on_reregister(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_same_total", labels={"x": "1"})
        b = reg.counter("repro_same_total", labels={"x": "1"})
        other = reg.counter("repro_same_total", labels={"x": "2"})
        assert a is b
        assert a is not other
        a.inc()
        assert b.value() == 1.0

    def test_concurrent_inc_is_lossless(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_race_total")

        def spin():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000.0


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12.0

    def test_callback_gauge(self):
        items = [1, 2, 3]
        reg = MetricsRegistry()
        g = reg.gauge("repro_len", callback=lambda: len(items))
        assert g.value() == 3.0
        items.append(4)
        assert g.value() == 4.0


class TestHistogram:
    def test_observe_buckets_and_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", buckets=[0.1, 1.0, 10.0])
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        counts, total_sum, count = h.snapshot()
        assert counts == [1, 1, 1, 1]  # one per bucket incl. +Inf overflow
        assert count == 4
        assert total_sum == pytest.approx(55.55)

    def test_boundary_value_lands_in_its_bucket(self):
        # le is inclusive: an observation exactly at a bound counts there.
        reg = MetricsRegistry()
        h = reg.histogram("repro_edge_seconds", buckets=[1.0, 2.0])
        h.observe(1.0)
        assert h.snapshot()[0] == [1, 0, 0]

    def test_quantile_interpolation(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_q_seconds", buckets=[1.0, 2.0, 4.0])
        for _ in range(100):
            h.observe(1.5)  # all samples in the (1.0, 2.0] bucket
        # Linear interpolation inside the winning bucket.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(0.99) <= 2.0
        assert h.quantile(0.0) == pytest.approx(1.0)

    def test_quantile_empty_and_bounds(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_q0_seconds", buckets=[1.0])
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("repro_desc_seconds", buckets=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([])
        # Empty buckets at the registry layer fall back to the defaults.
        h = reg.histogram("repro_empty_seconds", buckets=[])
        assert h.buckets == reg.default_buckets

    def test_default_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_dflt_seconds")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS


class TestRegistry:
    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "9starts_with_digit", "has space", "bad-dash"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_kind_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_kind_total")

    def test_summary_sums_labels_and_counts_histograms(self):
        reg = MetricsRegistry()
        reg.counter("repro_s_total", labels={"t": "a"}).inc(2)
        reg.counter("repro_s_total", labels={"t": "b"}).inc(3)
        h = reg.histogram("repro_s_seconds", buckets=[1.0])
        h.observe(0.5)
        h.observe(5.0)
        summary = reg.summary()
        assert summary["repro_s_total"] == 5.0
        assert summary["repro_s_seconds"] == 2.0  # histogram -> sample count

    def test_families_sorted(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total")
        reg.counter("repro_a_total")
        assert [f.name for f in reg.families()] == ["repro_a_total", "repro_b_total"]


class TestNullRegistry:
    def test_noops_absorb_everything(self):
        reg = NullRegistry()
        c = reg.counter("repro_x_total")
        g = reg.gauge("repro_x")
        h = reg.histogram("repro_x_seconds")
        c.inc()
        g.set(9)
        g.inc()
        g.dec()
        h.observe(1.0)
        assert c.value() == 0.0
        assert h.quantile(0.99) == 0.0
        assert h.snapshot() == ([], 0.0, 0)
        assert reg.families() == []
        assert reg.render() == ""

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled is True
        assert NULL_REGISTRY.enabled is False


class TestRender:
    def test_render_is_valid_prometheus(self, prom_validator):
        reg = MetricsRegistry()
        reg.counter("repro_r_total", "Things counted", labels={"tenant": "a"}).inc(3)
        reg.gauge("repro_r_depth", "Queue depth").set(2)
        h = reg.histogram("repro_r_seconds", "Latency", labels={"tenant": "a"},
                          buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.render()
        prom_validator(text)
        assert '# TYPE repro_r_seconds histogram' in text
        # Registered labels come first (sorted), le last.
        assert 'repro_r_seconds_bucket{tenant="a",le="0.1"} 1' in text
        assert 'repro_r_seconds_bucket{tenant="a",le="+Inf"} 3' in text
        assert 'repro_r_seconds_count{tenant="a"} 3' in text
        assert 'repro_r_total{tenant="a"} 3' in text

    def test_label_values_escaped(self, prom_validator):
        reg = MetricsRegistry()
        reg.counter("repro_esc_total", labels={"q": 'say "hi"\n'}).inc()
        text = reg.render()
        prom_validator(text)
        assert 'q="say \\"hi\\"\\n"' in text

    def test_merge_sums_identical_samples(self, prom_validator):
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        shard_a.counter("repro_m_total", "merged").inc(2)
        shard_b.counter("repro_m_total", "merged").inc(3)
        ha = shard_a.histogram("repro_m_seconds", buckets=[1.0])
        hb = shard_b.histogram("repro_m_seconds", buckets=[1.0])
        ha.observe(0.5)
        hb.observe(0.5)
        hb.observe(2.0)
        text = render_prometheus([shard_a, shard_b])
        prom_validator(text)
        assert "repro_m_total 5" in text
        assert 'repro_m_seconds_bucket{le="1"} 2' in text
        assert 'repro_m_seconds_count 3' in text
        # One TYPE line per family even when merged from several registries.
        assert text.count("# TYPE repro_m_total") == 1

    def test_merge_bucket_mismatch_folds_into_inf(self, prom_validator):
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        ha = shard_a.histogram("repro_mm_seconds", buckets=[1.0, 2.0])
        hb = shard_b.histogram("repro_mm_seconds", buckets=[5.0])
        ha.observe(0.5)
        hb.observe(0.5)
        text = render_prometheus([shard_a, shard_b])
        prom_validator(text)
        # shard_b's sample cannot be mapped onto shard_a's layout: it lands
        # in +Inf but still counts toward _count and _sum.
        assert 'repro_mm_seconds_bucket{le="1"} 1' in text
        assert 'repro_mm_seconds_bucket{le="+Inf"} 2' in text
        assert 'repro_mm_seconds_count 2' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""
