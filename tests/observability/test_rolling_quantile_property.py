"""Property-based tests (Hypothesis) for :class:`RollingQuantile`.

Pins the estimator's documented error bound against an exact oracle: the
windowed ``q``-quantile estimate must lie inside the bucket containing the
``ceil(q·n)``-th smallest live sample (overflow samples clamp to the
largest finite bound), ``frac_over`` must be exact at bucket bounds, and
window expiry must drop exactly the samples that have aged out.
"""

import math
from bisect import bisect_left

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.observability.slo import RollingQuantile  # noqa: E402


BOUNDS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


class FakeClock:
    def __init__(self, t: float = 1_000_000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


def bucket_interval(value):
    """The (lower, upper] bucket of ``value``; overflow clamps to the top."""
    idx = bisect_left(BOUNDS, value)
    if idx >= len(BOUNDS):
        return BOUNDS[-1], BOUNDS[-1]
    lower = BOUNDS[idx - 1] if idx > 0 else 0.0
    return lower, BOUNDS[idx]


samples_st = st.lists(
    st.floats(min_value=0.0, max_value=20.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200,
)
quantile_st = st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)


class TestQuantileErrorBound:
    @given(samples=samples_st, q=quantile_st)
    @settings(max_examples=200, deadline=None)
    def test_estimate_within_bucket_of_exact_quantile(self, samples, q):
        clock = FakeClock()
        rq = RollingQuantile(window_s=60.0, bounds=BOUNDS, time_fn=clock)
        for value in samples:
            rq.record(value)
        estimate = rq.quantile(q)
        assert estimate is not None
        rank = max(1, math.ceil(q * len(samples)))
        exact = sorted(samples)[rank - 1]
        lower, upper = bucket_interval(exact)
        assert lower <= estimate <= upper, (
            f"estimate {estimate} outside bucket ({lower}, {upper}] of the "
            f"rank-{rank} sample {exact} (n={len(samples)}, q={q})"
        )

    @given(samples=samples_st)
    @settings(max_examples=100, deadline=None)
    def test_frac_over_exact_at_bucket_bounds(self, samples):
        clock = FakeClock()
        rq = RollingQuantile(window_s=60.0, bounds=BOUNDS, time_fn=clock)
        for value in samples:
            rq.record(value)
        for threshold in BOUNDS:
            exact = sum(1 for v in samples if v > threshold) / len(samples)
            assert rq.frac_over(threshold) == pytest.approx(exact)

    @given(samples=samples_st)
    @settings(max_examples=100, deadline=None)
    def test_count_and_mean_match_the_oracle(self, samples):
        clock = FakeClock()
        rq = RollingQuantile(window_s=60.0, bounds=BOUNDS, time_fn=clock)
        for value in samples:
            rq.record(value)
        assert rq.count() == len(samples)
        assert rq.mean() == pytest.approx(sum(samples) / len(samples))


class TestWindowEdgeCases:
    @given(samples=samples_st, advance=st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=100, deadline=None)
    def test_expiry_never_resurrects_samples(self, samples, advance):
        """Counts only shrink as time passes, and a full window wipes them."""
        clock = FakeClock()
        window = 60.0
        rq = RollingQuantile(window_s=window, bounds=BOUNDS, time_fn=clock)
        for value in samples:
            rq.record(value)
        before = rq.count()
        clock.t += advance
        after = rq.count()
        assert after <= before
        if advance >= window + window / rq.slots:
            assert after == 0
            assert rq.quantile(0.5) is None
            assert rq.mean() is None
            assert rq.frac_over(BOUNDS[0]) == 0.0

    @given(q=quantile_st)
    @settings(max_examples=50, deadline=None)
    def test_empty_window_returns_none_for_every_quantile(self, q):
        rq = RollingQuantile(window_s=60.0, bounds=BOUNDS,
                             time_fn=FakeClock())
        assert rq.quantile(q) is None
        assert rq.count() == 0
