"""Unit tests for the SLO plane: rolling quantiles and burn-rate alerting.

Everything runs on an injected fake clock, so window expiry and burn-rate
edges are deterministic — no sleeps, no wall-clock coupling.
"""

import pytest

from repro.observability.metrics import MetricsRegistry, render_prometheus
from repro.observability.slo import (
    RollingQuantile,
    SloEngine,
    parse_tenant_slos,
)


class FakeClock:
    def __init__(self, t: float = 1_000_000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


BOUNDS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


class TestRollingQuantile:
    def test_empty_window_is_distinguishable_from_zero(self):
        clock = FakeClock()
        rq = RollingQuantile(window_s=10.0, bounds=BOUNDS, time_fn=clock)
        assert rq.count() == 0
        assert rq.quantile(0.5) is None
        assert rq.mean() is None
        assert rq.frac_over(0.1) == 0.0

    def test_quantile_lands_in_the_right_bucket(self):
        clock = FakeClock()
        rq = RollingQuantile(window_s=10.0, bounds=BOUNDS, time_fn=clock)
        for _ in range(90):
            rq.record(0.02)  # (0.01, 0.05] bucket
        for _ in range(10):
            rq.record(0.7)   # (0.5, 1.0] bucket
        p50 = rq.quantile(0.5)
        assert 0.01 <= p50 <= 0.05
        p99 = rq.quantile(0.99)
        assert 0.5 <= p99 <= 1.0
        # q=0 is the smallest live sample's bucket.
        assert rq.quantile(0.0) <= 0.05

    def test_overflow_clamps_to_largest_finite_bound(self):
        clock = FakeClock()
        rq = RollingQuantile(window_s=10.0, bounds=BOUNDS, time_fn=clock)
        for _ in range(5):
            rq.record(50.0)  # beyond every bound
        assert rq.quantile(0.99) == BOUNDS[-1]

    def test_frac_over_is_exact_at_a_bucket_bound(self):
        clock = FakeClock()
        rq = RollingQuantile(window_s=10.0, bounds=BOUNDS, time_fn=clock)
        for _ in range(75):
            rq.record(0.05)  # exactly at the bound: counted as under
        for _ in range(25):
            rq.record(0.2)
        assert rq.frac_over(0.05) == pytest.approx(0.25)

    def test_window_expiry_forgets_old_samples(self):
        clock = FakeClock()
        rq = RollingQuantile(window_s=10.0, bounds=BOUNDS, time_fn=clock)
        for _ in range(100):
            rq.record(0.02)
        assert rq.count() == 100
        clock.advance(10.0 + 10.0 / 8)  # one full window + slot resolution
        assert rq.count() == 0
        assert rq.quantile(0.99) is None

    def test_partial_expiry_is_gradual(self):
        clock = FakeClock()
        rq = RollingQuantile(window_s=8.0, bounds=BOUNDS, slots=8, time_fn=clock)
        rq.record(0.02)
        clock.advance(4.0)
        rq.record(0.2)
        assert rq.count() == 2
        clock.advance(5.0)  # first sample now ~9s old: outside the window
        assert rq.count() == 1
        assert rq.quantile(0.5) > 0.05

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            RollingQuantile(window_s=0)
        with pytest.raises(ValueError):
            RollingQuantile(slots=0)
        with pytest.raises(ValueError):
            RollingQuantile(bounds=())
        with pytest.raises(ValueError):
            RollingQuantile(bounds=(2.0, 1.0))
        rq = RollingQuantile()
        with pytest.raises(ValueError):
            rq.quantile(1.5)


class TestParseTenantSlos:
    def test_parses_targets_and_defaults(self):
        objectives = parse_tenant_slos(
            {"interactive": {"p99_ms": 250, "window_s": 60}}
        )
        (obj,) = objectives
        assert obj.tenant == "interactive"
        assert obj.name == "p99_ms"
        assert obj.quantile == 0.99
        assert obj.target_s == pytest.approx(0.25)
        assert obj.window_s == 60
        assert obj.slow_window_s == 600  # 10x default
        assert obj.burn_threshold == 1.0
        assert obj.budget == pytest.approx(0.01)

    def test_multiple_objectives_per_tenant(self):
        objectives = parse_tenant_slos(
            {"t": {"p50_ms": 10, "p99_ms": 100, "burn_threshold": 2.0}}
        )
        assert {o.name for o in objectives} == {"p50_ms", "p99_ms"}
        assert all(o.burn_threshold == 2.0 for o in objectives)

    def test_rejects_malformed_specs(self):
        with pytest.raises(ValueError):
            parse_tenant_slos({"t": {"p75_ms": 10}})  # unknown key
        with pytest.raises(ValueError):
            parse_tenant_slos({"t": {"window_s": 60}})  # no objective
        with pytest.raises(ValueError):
            parse_tenant_slos({"t": {"p99_ms": -5}})  # non-positive target
        with pytest.raises(ValueError):
            parse_tenant_slos({"t": {"p99_ms": 100, "window_s": 0}})
        with pytest.raises(ValueError):
            parse_tenant_slos({"t": ["p99_ms"]})  # not a mapping

    def test_empty_and_none_are_fine(self):
        assert parse_tenant_slos(None) == []
        assert parse_tenant_slos({}) == []


SLOS = {"interactive": {"p99_ms": 100, "window_s": 10, "slow_window_s": 20}}


class TestSloEngine:
    def _engine(self, registry=None, on_alert=None):
        clock = FakeClock()
        engine = SloEngine(
            tenant_slos=SLOS,
            registry=registry if registry is not None else MetricsRegistry(),
            on_alert=on_alert,
            time_fn=clock,
        )
        return engine, clock

    def test_no_alert_when_latencies_meet_the_objective(self):
        engine, _clock = self._engine()
        for _ in range(50):
            engine.record("interactive", 0.01)
        assert engine.evaluate() == []
        assert engine.active_alerts() == []

    def test_alert_fires_on_both_windows_burning(self):
        fired = []
        engine, clock = self._engine(on_alert=fired.append)
        for _ in range(50):
            engine.record("interactive", 0.5)  # 5x over the 100ms target
        alerts = engine.evaluate()
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.tenant == "interactive"
        assert alert.objective == "p99_ms"
        assert alert.fast_burn >= 1.0 and alert.slow_burn >= 1.0
        assert alert.observed_ms is not None and alert.observed_ms > 100
        # Rising edge only: on_alert fired once, not on re-evaluation.
        assert len(fired) == 1
        engine.evaluate()
        assert len(fired) == 1
        payload = engine.active_alerts()
        assert payload[0]["kind"] == "slo_burn"
        assert payload[0]["state"] == "firing"

    def test_min_samples_guards_tiny_windows(self):
        fired = []
        engine, _clock = self._engine(on_alert=fired.append)
        for _ in range(SloEngine.min_samples - 1):
            engine.record("interactive", 0.5)
        assert engine.evaluate() == []
        assert fired == []

    def test_alert_clears_when_the_window_recovers(self):
        engine, clock = self._engine()
        for _ in range(50):
            engine.record("interactive", 0.5)
        assert len(engine.evaluate()) == 1
        # Let both windows forget the bad minute entirely.
        clock.advance(25.0)
        assert engine.evaluate() == []
        assert engine.active_alerts() == []

    def test_on_alert_exceptions_are_swallowed(self):
        def boom(alert):
            raise RuntimeError("pager is down")

        engine, _clock = self._engine(on_alert=boom)
        for _ in range(50):
            engine.record("interactive", 0.5)
        assert len(engine.evaluate()) == 1  # did not propagate

    def test_burn_gauges_are_rendered(self):
        registry = MetricsRegistry()
        engine, _clock = self._engine(registry=registry)
        for _ in range(50):
            engine.record("interactive", 0.5)
        engine.evaluate()
        text = render_prometheus([registry])
        assert 'repro_slo_burn{objective="p99_ms",tenant="interactive",window="fast"}' in text
        assert 'window="slow"' in text

    def test_tenant_snapshot_reports_windows_and_objectives(self):
        engine, _clock = self._engine()
        for _ in range(40):
            engine.record("interactive", 0.02)
        engine.record("batch", 1.0)  # no objective declared: still tracked
        snap = engine.tenant_snapshot()
        assert snap["interactive"]["count"] == 40
        assert snap["interactive"]["p50_ms"] is not None
        (obj,) = snap["interactive"]["objectives"]
        assert obj["objective"] == "p99_ms"
        assert obj["target_ms"] == pytest.approx(100.0)
        assert obj["firing"] is False
        assert snap["batch"]["objectives"] == []
        assert snap["batch"]["count"] == 1

    def test_stream_snapshot(self):
        engine, _clock = self._engine()
        for _ in range(10):
            engine.record_stream("exec:htex", 0.03)
        snap = engine.stream_snapshot()
        assert snap["exec:htex"]["count"] == 10
        assert snap["exec:htex"]["p50_ms"] is not None
