"""Unit tests for the trace-context primitives.

The context is a plain dict by design (it must pickle across the
manager/worker boundary and ride existing wire frames unchanged); these
tests pin down the contract: stamping, attempt bumping, and the flush
high-water mark that keeps DFK and gateway flushes disjoint.
"""

from repro.monitoring.db import InMemoryStore
from repro.monitoring.hub import MonitoringHub
from repro.monitoring.messages import MessageType
from repro.observability.trace import (
    SPAN_EVENTS,
    flush_spans,
    new_trace,
    next_attempt,
    stamp,
)


def test_new_trace_shape():
    trace = new_trace(task_id=7)
    assert trace["id"].startswith("trace-")
    assert trace["task"] == 7
    assert trace["attempt"] == 1
    assert trace["events"] == []
    assert trace["flushed"] == 0


def test_new_trace_ids_are_unique():
    assert new_trace()["id"] != new_trace()["id"]


def test_stamp_appends_in_order():
    trace = new_trace()
    stamp(trace, "submitted", 1.0)
    stamp(trace, "queued", 2.0)
    stamp(trace, "routed")  # defaults to time.time()
    names = [name for name, _t in trace["events"]]
    assert names == ["submitted", "queued", "routed"]
    assert trace["events"][0][1] == 1.0
    assert trace["events"][2][1] > 2.0


def test_stamp_and_next_attempt_are_noops_on_none():
    stamp(None, "submitted")
    next_attempt(None)  # must not raise


def test_next_attempt_bumps():
    trace = new_trace()
    next_attempt(trace)
    assert trace["attempt"] == 2


def test_canonical_event_order():
    assert SPAN_EVENTS == [
        "submitted", "queued", "routed", "dispatched", "executing",
        "exec_done", "result_sent", "result_committed", "delivered",
    ]


def test_flush_spans_high_water_mark():
    hub = MonitoringHub(store=InMemoryStore())
    hub.start()
    trace = new_trace(task_id=3)
    stamp(trace, "submitted", 1.0)
    stamp(trace, "queued", 2.0)
    assert flush_spans(trace, hub, "run-x") == 2
    # Re-flushing with no new events is a no-op...
    assert flush_spans(trace, hub, "run-x") == 0
    # ...and only the tail goes out after another stamp.
    stamp(trace, "delivered", 3.0)
    assert flush_spans(trace, hub, "run-x") == 1
    hub.close()
    rows = hub.query(MessageType.TASK_SPAN, run_id="run-x")
    assert len(rows) == 3
    assert sorted(r["state"] for r in rows) == [
        "delivered", "queued", "submitted",
    ]
    assert {r["trace_id"] for r in rows} == {trace["id"]}
    assert all(r["task_id"] == 3 for r in rows)


def test_flush_spans_without_monitoring_is_noop():
    trace = new_trace()
    stamp(trace, "submitted")
    assert flush_spans(trace, None, "run-x") == 0
    # The high-water mark must not advance when nothing was sent.
    assert trace["flushed"] == 0


def test_flush_spans_task_id_override():
    hub = MonitoringHub(store=InMemoryStore())
    hub.start()
    trace = new_trace()  # task still -1: gateway mints before DFK assigns
    stamp(trace, "submitted", 1.0)
    flush_spans(trace, hub, "run-y", task_id=42)
    hub.close()
    rows = hub.query(MessageType.TASK_SPAN, run_id="run-y")
    assert rows[0]["task_id"] == 42
