"""Retries keep their trace: one trace_id, one row set per attempt.

Satellite of the tracing tentpole. Two layers are pinned down:

* DFK-level retries (``Config(retries=N)``): the retry path flushes the
  failed attempt's spans, bumps the attempt counter, and the re-execution
  writes its own row set under the *same* trace id.
* Interchange-level redispatch (worker_lost below the poison threshold):
  the settled item — trace context included — goes back on the pending
  queue, so the same attempt gains a second ``dispatched`` hop instead of
  losing its trace.
"""

import time

import repro
from repro import Config
from repro.apps.app import python_app
from repro.comms import MessageClient
from repro.errors import WorkerLost
from repro.executors.htex import messages as msg
from repro.executors.htex.interchange import Interchange
from repro.monitoring.db import InMemoryStore
from repro.monitoring.hub import MonitoringHub
from repro.monitoring.report import span_timeline
from repro.observability.trace import new_trace, stamp


def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDFKRetryTrace:
    def test_retry_keeps_trace_id_and_opens_new_attempt(self, run_dir, tmp_path):
        """WorkerLost on attempt 1 -> retried; both attempts share a trace."""
        marker = str(tmp_path / "first_attempt_done")

        @python_app
        def lose_worker_once(path):
            import os
            from repro.errors import WorkerLost as WL
            if not os.path.exists(path):
                with open(path, "w"):
                    pass
                raise WL(7, "somehost")
            return "recovered"

        store = InMemoryStore()
        hub = MonitoringHub(store=store)
        dfk = repro.load(
            Config(retries=2, monitoring=hub, run_dir=run_dir, strategy="none")
        )
        run_id = dfk.run_id
        try:
            assert lose_worker_once(marker).result(timeout=30) == "recovered"
        finally:
            repro.clear()  # flushes and closes the hub

        traces = span_timeline(store, run_id=run_id)
        assert len(traces) == 1, f"expected one trace, got {set(traces)}"
        (trace_id, attempts), = traces.items()
        assert trace_id.startswith("trace-")
        # One row set per attempt, both under the same trace id.
        assert set(attempts) == {1, 2}
        attempt1 = [e["event"] for e in attempts[1]]
        attempt2 = [e["event"] for e in attempts[2]]
        # submitted is stamped once, at mint time, on the first attempt.
        assert attempt1[0] == "submitted"
        assert "submitted" not in attempt2
        assert "queued" in attempt2
        # The retry ran to completion: its row set ends at the commit hop.
        assert attempt2[-1] == "result_committed"
        assert "result_committed" not in attempt1
        # Timestamps are monotone within each attempt.
        for events in attempts.values():
            ts = [e["t"] for e in events]
            assert ts == sorted(ts)


class TestInterchangeRedispatchTrace:
    """A worker_lost redispatch must not mint a new trace context."""

    @staticmethod
    def _fake_manager(interchange, identity, block_id=None):
        return MessageClient(
            interchange.host,
            interchange.port,
            identity=identity,
            registration_info=msg.manager_registration_info(
                block_id=block_id or identity, hostname=identity, worker_count=1
            ),
        )

    @staticmethod
    def _await_tasks(client, timeout=5.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            message = client.recv(timeout=0.2)
            if message is not None and message.get("type") == "tasks":
                return message["items"]
        return None

    def test_redispatch_preserves_trace_and_adds_dispatched_hop(self):
        results = []
        interchange = Interchange(
            result_callback=results.append, heartbeat_threshold=60,
            poison_threshold=3,
        )
        interchange.start()
        client = self._fake_manager(interchange, "mgr-trace")
        try:
            assert wait_for(lambda: interchange.connected_manager_count == 1)
            trace = new_trace(task_id=31)
            stamp(trace, "submitted")
            interchange.submit_tasks([msg.task_item(31, b"payload", trace=trace)])
            assert self._await_tasks(client) is not None

            # The interchange stamps "dispatched" only after the socket send
            # succeeds, so the fake manager can hold the batch before the
            # stamp lands — poll for the hop instead of asserting instantly.
            def dispatched_hops():
                return [e for e, _t in trace["events"]].count("dispatched")

            assert wait_for(lambda: dispatched_hops() == 1)
            # Live worker attribution rides the same stamp (straggler plane).
            assert trace.get("manager") == "mgr-trace"

            client.send(msg.results_message([msg.worker_lost_item(31, 0, "hostt", 9)]))
            redelivered = self._await_tasks(client)
            assert redelivered is not None and redelivered[0]["task_id"] == 31
            # Same context object all along: same id, second dispatched hop.
            assert trace["id"].startswith("trace-")
            assert wait_for(lambda: dispatched_hops() == 2)
            assert trace["attempt"] == 1  # attempts are a DFK-retry notion
        finally:
            client.close()
            interchange.stop()
