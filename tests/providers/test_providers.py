"""Tests for execution providers (local, batch schedulers, clouds)."""

import time

import pytest

from repro.errors import SubmitException
from repro.lrm import BatchSchedulerSim, PartitionSpec
from repro.lrm.cloud import CloudSim
from repro.providers import (
    AWSProvider,
    CobaltProvider,
    CondorProvider,
    GoogleCloudProvider,
    GridEngineProvider,
    JobState,
    KubernetesProvider,
    LocalProvider,
    SlurmProvider,
    TorqueProvider,
)


def wait_for(predicate, timeout=5.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestProviderValidation:
    def test_invalid_block_shape(self):
        with pytest.raises(ValueError):
            LocalProvider(nodes_per_block=0)
        with pytest.raises(ValueError):
            LocalProvider(min_blocks=5, max_blocks=2)
        with pytest.raises(ValueError):
            LocalProvider(parallelism=2.0)

    def test_cores_per_block(self):
        prov = LocalProvider(nodes_per_block=2, cores_per_node=4)
        assert prov.cores_per_block == 8


class TestLocalProvider:
    def test_submit_status_cancel(self, tmp_path):
        prov = LocalProvider(script_dir=str(tmp_path / "scripts"))
        job_id = prov.submit("sleep 5", tasks_per_node=1, job_name="blk")
        assert prov.status([job_id])[0].state == JobState.RUNNING
        assert prov.cancel([job_id]) == [True]
        assert wait_for(lambda: prov.status([job_id])[0].terminal)

    def test_completed_job(self, tmp_path):
        prov = LocalProvider(script_dir=str(tmp_path / "scripts"))
        marker = tmp_path / "out.txt"
        job_id = prov.submit(f"echo finished > {marker}", tasks_per_node=1)
        assert wait_for(lambda: prov.status([job_id])[0].state == JobState.COMPLETED)
        assert marker.read_text().strip() == "finished"

    def test_worker_init_runs_first(self, tmp_path):
        marker = tmp_path / "init_then_cmd.txt"
        prov = LocalProvider(script_dir=str(tmp_path / "scripts"), worker_init=f"echo init >> {marker}")
        job_id = prov.submit(f"echo cmd >> {marker}", tasks_per_node=1)
        assert wait_for(lambda: prov.status([job_id])[0].terminal)
        assert marker.read_text().split() == ["init", "cmd"]

    def test_unknown_job_status(self, tmp_path):
        prov = LocalProvider(script_dir=str(tmp_path / "scripts"))
        assert prov.status(["local.nope.1"])[0].state == JobState.MISSING
        assert prov.cancel(["local.nope.1"]) == [False]


@pytest.fixture
def lrm(tmp_path):
    sim = BatchSchedulerSim(
        name=f"provlrm-{tmp_path.name}",
        partitions=[PartitionSpec(name="batch", total_nodes=8, cores_per_node=4)],
        execute_jobs=False,
        poll_interval=0.02,
        working_dir=str(tmp_path / "lrm"),
    )
    yield sim
    sim.shutdown()


class TestClusterProviders:
    @pytest.mark.parametrize(
        "provider_cls", [SlurmProvider, TorqueProvider, CobaltProvider, GridEngineProvider, CondorProvider]
    )
    def test_submit_status_cancel(self, provider_cls, lrm, tmp_path):
        prov = provider_cls(partition="batch", lrm=lrm, nodes_per_block=2, walltime="00:05:00")
        job_id = prov.submit("echo worker-pool", tasks_per_node=2, job_name="blk0")
        assert wait_for(lambda: prov.status([job_id])[0].state == JobState.RUNNING)
        job = lrm.get_job(job_id)
        assert job.nodes == 2
        assert prov.cancel([job_id]) == [True]
        assert prov.status([job_id])[0].state == JobState.CANCELLED

    def test_pending_while_queue_full(self, lrm):
        prov = SlurmProvider(partition="batch", lrm=lrm, nodes_per_block=8)
        first = prov.submit("echo a", tasks_per_node=1)
        second = prov.submit("echo b", tasks_per_node=1)
        assert wait_for(lambda: prov.status([first])[0].state == JobState.RUNNING)
        assert prov.status([second])[0].state == JobState.PENDING

    def test_missing_job(self, lrm):
        prov = SlurmProvider(partition="batch", lrm=lrm)
        assert prov.status(["bogus.1"])[0].state == JobState.MISSING

    def test_scheduler_options_and_worker_init_in_script(self, lrm, tmp_path):
        prov = SlurmProvider(
            partition="batch",
            lrm=lrm,
            scheduler_options="#SBATCH --constraint=knl",
            worker_init="module load python",
        )
        job_id = prov.submit("echo run", tasks_per_node=1)
        script = lrm.get_job(job_id).script
        assert "#SBATCH --constraint=knl" in script
        assert "module load python" in script
        assert "#SBATCH --nodes=1" in script

    def test_cores_defaults_from_partition(self, lrm):
        prov = SlurmProvider(partition="batch", lrm=lrm)
        assert prov.cores_per_node == 4


class TestCloudProviders:
    @pytest.mark.parametrize("provider_cls", [AWSProvider, GoogleCloudProvider, KubernetesProvider])
    def test_block_lifecycle(self, provider_cls, tmp_path):
        cloud = CloudSim(
            name=f"{provider_cls.label}-test",
            provisioning_delay_s=0.05,
            execute_instances=False,
            working_dir=str(tmp_path / "cloud"),
        )
        prov = provider_cls(cloud=cloud, nodes_per_block=2)
        try:
            block = prov.submit("start-worker", tasks_per_node=1)
            status = prov.status([block])[0]
            assert status.state in (JobState.PENDING, JobState.RUNNING)
            assert wait_for(lambda: prov.status([block])[0].state == JobState.RUNNING)
            assert cloud.active_count() == 2
            assert prov.cancel([block]) == [True]
            assert cloud.active_count() == 0
        finally:
            cloud.shutdown()

    def test_capacity_exhaustion_rolls_back(self, tmp_path):
        cloud = CloudSim(name="tiny", capacity=1, execute_instances=False, working_dir=str(tmp_path / "tiny"))
        prov = AWSProvider(cloud=cloud, nodes_per_block=2)
        try:
            with pytest.raises(SubmitException):
                prov.submit("start", tasks_per_node=1)
            assert cloud.active_count() == 0
        finally:
            cloud.shutdown()

    def test_unknown_block(self, tmp_path):
        cloud = CloudSim(name="u", execute_instances=False, working_dir=str(tmp_path / "u"))
        prov = AWSProvider(cloud=cloud)
        try:
            assert prov.status(["nope"])[0].state == JobState.MISSING
            assert prov.cancel(["nope"]) == [False]
        finally:
            cloud.shutdown()
