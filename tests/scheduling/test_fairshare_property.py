"""Property-based tests for :class:`WeightedFairShareQueue` (Hypothesis).

The example-based suite (test_queues.py) pins behaviour on hand-picked
scenarios; these properties assert the start-time-fair-queueing *invariants*
over generated workloads:

* the system virtual clock never runs backwards;
* a full drain returns every enqueued item exactly once, preserving each
  tenant's internal order (equal priorities);
* over any K pops of an all-backlogged system with unit costs, tenant i
  receives at least ``floor(K * w_i / W) - 1`` services (the classic SFQ
  fairness floor), so no lane can be starved;
* the gap between consecutive services of a continuously backlogged lane is
  bounded by its weighted share of one "round".
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402
from hypothesis.stateful import (  # noqa: E402
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.scheduling import WeightedFairShareQueue  # noqa: E402

TENANTS = ["alpha", "beta", "gamma", "delta", "epsilon"]

weights_st = st.dictionaries(
    st.sampled_from(TENANTS),
    st.integers(min_value=1, max_value=10),
    min_size=2,
    max_size=len(TENANTS),
)


def preload(queue, weights, depth):
    for tenant, weight in weights.items():
        queue.set_weight(tenant, weight)
        for n in range(depth):
            queue.put(tenant, {"tenant": tenant, "n": n})


class TestDrainProperties:
    @given(
        plan=st.lists(
            st.tuples(st.sampled_from(TENANTS), st.integers(0, 5)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_full_drain_conserves_items_and_lane_order(self, plan):
        """Every item comes back exactly once; within a tenant, FIFO."""
        queue = WeightedFairShareQueue()
        expected = {}
        for serial, (tenant, weight_nudge) in enumerate(plan):
            if weight_nudge:
                queue.set_weight(tenant, weight_nudge)
            queue.put(tenant, {"serial": serial})
            expected.setdefault(tenant, []).append(serial)
        drained = {}
        while True:
            entry = queue.pop()
            if entry is None:
                break
            tenant, item = entry
            drained.setdefault(tenant, []).append(item["serial"])
        assert drained == expected
        assert queue.empty() and queue.qsize() == 0

    @given(
        weights=weights_st,
        pops=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_vclock_is_monotone_nondecreasing(self, weights, pops):
        queue = WeightedFairShareQueue()
        preload(queue, weights, depth=60)
        last = queue._vclock
        for _ in range(pops):
            assert queue.pop() is not None
            assert queue._vclock >= last
            last = queue._vclock


class TestFairnessProperties:
    @given(
        weights=weights_st,
        rounds=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_backlogged_lanes_get_their_weighted_floor(self, weights, rounds):
        """SFQ fairness: with every lane backlogged throughout and unit
        costs, K pops give lane i at least floor(K * w_i / W) - 1 services."""
        total_weight = sum(weights.values())
        k = rounds * total_weight
        queue = WeightedFairShareQueue()
        preload(queue, weights, depth=k)
        served = {tenant: 0 for tenant in weights}
        for _ in range(k):
            tenant, _item = queue.pop()
            served[tenant] += 1
        for tenant, weight in weights.items():
            floor = math.floor(k * weight / total_weight) - 1
            assert served[tenant] >= floor, (
                f"{tenant} (w={weight}) got {served[tenant]} of {k} pops; "
                f"fair floor is {floor} (weights={weights})"
            )

    @given(weights=weights_st)
    @settings(max_examples=60, deadline=None)
    def test_no_lane_waits_longer_than_one_weighted_round(self, weights):
        """Starvation bound: a continuously backlogged lane is served at
        least once in every ceil(W / w_i) + lanes consecutive pops."""
        total_weight = sum(weights.values())
        k = 6 * total_weight
        queue = WeightedFairShareQueue()
        preload(queue, weights, depth=k)
        last_served = {tenant: 0 for tenant in weights}
        for popno in range(1, k + 1):
            tenant, _item = queue.pop()
            last_served[tenant] = popno
            for other, weight in weights.items():
                bound = math.ceil(total_weight / weight) + len(weights)
                gap = popno - last_served[other]
                assert gap <= bound, (
                    f"{other} (w={weight}) unserved for {gap} pops "
                    f"(bound {bound}, weights={weights})"
                )


class FairShareMachine(RuleBasedStateMachine):
    """Stateful interleavings of put/pop/set_weight.

    Tracks a model of what is queued per tenant; checks conservation (pops
    return exactly the still-queued items), vclock monotonicity, and that
    qsize/empty agree with the model after every step.
    """

    def __init__(self):
        super().__init__()
        self.queue = WeightedFairShareQueue()
        self.model = {}  # tenant -> list of serials, in put order
        self.serial = 0
        self.last_vclock = 0.0

    @rule(tenant=st.sampled_from(TENANTS))
    def put(self, tenant):
        self.queue.put(tenant, {"serial": self.serial})
        self.model.setdefault(tenant, []).append(self.serial)
        self.serial += 1

    @rule(tenant=st.sampled_from(TENANTS), weight=st.integers(1, 10))
    def set_weight(self, tenant, weight):
        self.queue.set_weight(tenant, weight)
        assert self.queue.weight_of(tenant) == weight

    @precondition(lambda self: any(self.model.values()))
    @rule()
    def pop_returns_a_queued_item(self):
        tenant, item = self.queue.pop()
        assert self.model.get(tenant), f"pop invented work for {tenant}"
        # Lanes are FIFO at equal priority: the oldest serial comes first.
        assert item["serial"] == self.model[tenant].pop(0)

    @precondition(lambda self: not any(self.model.values()))
    @rule()
    def pop_empty_returns_none(self):
        assert self.queue.pop() is None

    @invariant()
    def vclock_never_rewinds(self):
        assert self.queue._vclock >= self.last_vclock
        self.last_vclock = self.queue._vclock

    @invariant()
    def sizes_agree_with_model(self):
        for tenant, serials in self.model.items():
            assert self.queue.qsize(tenant) == len(serials)
        assert self.queue.qsize() == sum(len(s) for s in self.model.values())
        assert self.queue.empty() == (self.queue.qsize() == 0)


TestFairShareStateful = FairShareMachine.TestCase
TestFairShareStateful.settings = settings(max_examples=40, deadline=None)
