"""Unit tests for the placement policies' per-round views."""

import random

import pytest

from repro.scheduling.placement import ManagerSlot, PLACEMENT_POLICIES, make_placement_view


def slots(*frees):
    return [ManagerSlot(f"m{i}", free, 0) for i, free in enumerate(frees)]


class TestLeastLoaded:
    def test_picks_most_free(self):
        view = make_placement_view("least_loaded", slots(1, 5, 3), random.Random(0))
        assert view.place(1) == "m1"  # 5 free
        assert view.place(1) == "m1"  # still 4 free, most of anyone
        assert view.place(1) == "m2"  # tied at 3 free; earlier entry wins
        assert view.place(1) == "m1"  # m1 (3) beats m2 (2) again

    def test_unfit_task_returns_none_without_blocking_capacity(self):
        view = make_placement_view("least_loaded", slots(2, 3), random.Random(0))
        assert view.place(4) is None  # nobody has 4 slots
        assert view.place(3) == "m1"  # but smaller tasks still place

    def test_exhaustion(self):
        view = make_placement_view("least_loaded", slots(1, 1), random.Random(0))
        assert view.place(1) is not None
        assert view.place(1) is not None
        assert view.place(1) is None


class TestBinPack:
    def test_best_fit_prefers_fullest_fitting_manager(self):
        view = make_placement_view("bin_pack", slots(8, 4, 2), random.Random(0))
        assert view.place(2) == "m2"  # exactly fits the tightest manager
        assert view.place(3) == "m1"  # m2 is gone; 4-free beats 8-free
        assert view.place(4) == "m0"

    def test_packing_keeps_whole_managers_free_for_big_tasks(self):
        # Four 1-core tasks then a 4-core task over two 4-slot managers:
        # bin-pack fills one manager completely, so the 4-core task fits.
        view = make_placement_view("bin_pack", slots(4, 4), random.Random(0))
        first_four = {view.place(1) for _ in range(4)}
        assert first_four == {"m0"}
        assert view.place(4) == "m1"

    def test_never_oversubscribes(self):
        view = make_placement_view("bin_pack", slots(4, 4), random.Random(0))
        placed = [view.place(4), view.place(4), view.place(4)]
        assert placed[:2] == ["m0", "m1"] or placed[:2] == ["m1", "m0"]
        assert placed[2] is None


class TestSpread:
    def test_evens_out_load(self):
        view = make_placement_view("spread", slots(4, 4), random.Random(0))
        assignments = [view.place(1) for _ in range(4)]
        assert assignments.count("m0") == 2 and assignments.count("m1") == 2

    def test_respects_existing_outstanding(self):
        managers = [ManagerSlot("busy", 4, 10), ManagerSlot("idle", 4, 0)]
        view = make_placement_view("spread", managers, random.Random(0))
        assert view.place(1) == "idle"

    def test_unfit_managers_stay_available_for_smaller_tasks(self):
        managers = [ManagerSlot("small", 1, 0), ManagerSlot("big", 4, 5)]
        view = make_placement_view("spread", managers, random.Random(0))
        assert view.place(2) == "big"  # 'small' cannot fit it despite lower load
        assert view.place(1) == "small"  # but is still there for a 1-core task


class TestRandomAndRoundRobin:
    def test_random_only_places_where_it_fits(self):
        rng = random.Random(42)
        view = make_placement_view("random", slots(1, 4), rng)
        assert view.place(3) == "m1"

    def test_random_respects_capacity(self):
        rng = random.Random(7)
        view = make_placement_view("random", slots(2, 2), rng)
        places = [view.place(1) for _ in range(5)]
        assert places[4] is None
        assert sorted(p for p in places if p) == ["m0", "m0", "m1", "m1"]

    def test_round_robin_cycles_and_cursor_persists(self):
        cursor = [0]
        view = make_placement_view("round_robin", slots(2, 2, 2), random.Random(0), rr_cursor=cursor)
        assert [view.place(1) for _ in range(3)] == ["m1", "m2", "m0"]
        # A later round resumes from the shared cursor rather than restarting.
        view2 = make_placement_view("round_robin", slots(2, 2, 2), random.Random(0), rr_cursor=cursor)
        assert view2.place(1) == "m1"


class TestExecutionSlotConstraint:
    """Multi-core tasks reserve *execution* slots (workers), never prefetch
    buffer — otherwise two 4-core tasks could co-schedule on a 4-worker node."""

    def prefetching_slots(self):
        # Two managers, 4 workers each, prefetch 4: queue slots 8, exec slots 4.
        return [ManagerSlot(f"m{i}", 8, 0, exec_free=4) for i in range(2)]

    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_multicore_never_exceeds_workers(self, policy):
        view = make_placement_view(policy, self.prefetching_slots(), random.Random(0), rr_cursor=[0])
        placements = [view.place(4) for _ in range(3)]
        assert sorted(p for p in placements if p) == ["m0", "m1"]
        assert placements[2] is None  # both managers' workers fully reserved

    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_one_core_tasks_still_use_prefetch_buffer(self, policy):
        view = make_placement_view(policy, self.prefetching_slots(), random.Random(0), rr_cursor=[0])
        assert all(view.place(1) is not None for _ in range(16))  # full queue depth
        assert view.place(1) is None

    def test_exec_free_defaults_to_free(self):
        slot = ManagerSlot("m0", 4, 0)
        assert slot.exec_free == 4
        assert slot.fits(4)
        slot.consume(4)
        assert (slot.free, slot.exec_free) == (0, 0)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown placement policy"):
        make_placement_view("best_effort", slots(1), random.Random(0))


@pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
def test_all_policies_place_everything_when_capacity_suffices(policy):
    view = make_placement_view(policy, slots(4, 4, 4), random.Random(0), rr_cursor=[0])
    placements = [view.place(1) for _ in range(12)]
    assert all(p is not None for p in placements)
    assert view.place(1) is None
