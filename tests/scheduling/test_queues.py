"""Unit tests for the priority and weighted fair-share task queues."""

import threading

import pytest

from repro.scheduling.queues import PriorityTaskQueue, WeightedFairShareQueue


def item(task_id, priority=0):
    return {"task_id": task_id, "buffer": b"", "priority": priority}


def drain_ids(q):
    out = []
    while True:
        entry = q.pop()
        if entry is None:
            return out
        out.append(entry["task_id"])


class TestOrdering:
    def test_fifo_within_a_priority(self):
        q = PriorityTaskQueue()
        for i in range(5):
            q.put(item(i))
        assert drain_ids(q) == [0, 1, 2, 3, 4]

    def test_higher_priority_overtakes(self):
        q = PriorityTaskQueue()
        for i in range(5):
            q.put(item(i, priority=0))
        q.put(item(99, priority=9))
        assert drain_ids(q)[0] == 99

    def test_negative_priority_defers(self):
        q = PriorityTaskQueue()
        q.put(item(1, priority=-5))
        q.put(item(2, priority=0))
        assert drain_ids(q) == [2, 1]

    def test_pop_empty_returns_none(self):
        q = PriorityTaskQueue()
        assert q.pop() is None
        assert q.empty() and q.qsize() == 0


class TestAging:
    def test_aged_low_priority_beats_fresh_high_priority(self):
        """Starvation safety: enough accrued wait outweighs any priority gap."""
        q = PriorityTaskQueue(aging_s=0.001)  # 1 ms of waiting == 1 priority level
        old = item(1, priority=0)
        old["_vtime"] = old_vtime = -100.0  # enqueued "long ago"
        q.put(old)
        assert old["_vtime"] == old_vtime  # an existing stamp is preserved
        q.put(item(2, priority=9))  # fresh, max priority
        assert drain_ids(q) == [1, 2]

    def test_requeue_restores_original_position(self):
        """A dispatched-then-requeued task re-enters where it left, not at the back."""
        q = PriorityTaskQueue()
        first, second = item(1, priority=5), item(2, priority=5)
        q.put(first)
        q.put(second)
        popped = q.pop()
        assert popped["task_id"] == 1
        q.put(popped)  # e.g. its manager was lost
        assert drain_ids(q) == [1, 2]  # still ahead of the task enqueued after it

    def test_requeue_keeps_priority_over_later_bulk(self):
        q = PriorityTaskQueue()
        q.put(item(1, priority=9))
        requeued = q.pop()
        for i in range(10, 15):
            q.put(item(i, priority=0))
        q.put(requeued)
        assert drain_ids(q)[0] == 1


class TestThreading:
    def test_concurrent_put_pop(self):
        q = PriorityTaskQueue()
        n_producers, per_producer = 4, 200
        popped = []
        pop_lock = threading.Lock()
        done = threading.Event()

        def produce(base):
            for i in range(per_producer):
                q.put(item(base + i, priority=i % 3))

        def consume():
            while not (done.is_set() and q.empty()):
                entry = q.pop()
                if entry is not None:
                    with pop_lock:
                        popped.append(entry["task_id"])

        consumers = [threading.Thread(target=consume) for _ in range(2)]
        producers = [threading.Thread(target=produce, args=(k * 1000,)) for k in range(n_producers)]
        for t in consumers + producers:
            t.start()
        for t in producers:
            t.join()
        done.set()
        for t in consumers:
            t.join(timeout=5)
        assert sorted(popped) == sorted(k * 1000 + i for k in range(n_producers) for i in range(per_producer))



class TestWeightedFairShare:
    """The gateway's multi-tenant admission queue."""

    def _fill(self, q, tenants, n=100):
        for tenant in tenants:
            for i in range(n):
                q.put(tenant, item(i))

    def test_pop_empty_returns_none(self):
        q = WeightedFairShareQueue()
        assert q.pop() is None
        assert q.empty() and q.qsize() == 0

    def test_equal_weights_share_evenly(self):
        q = WeightedFairShareQueue()
        self._fill(q, ["a", "b"], n=50)
        served = [q.pop()[0] for _ in range(40)]
        assert abs(served.count("a") - served.count("b")) <= 1

    def test_weighted_tenants_served_in_ratio(self):
        q = WeightedFairShareQueue()
        q.set_weight("big", 10)
        q.set_weight("small", 1)
        self._fill(q, ["big", "small"], n=110)
        served = [q.pop()[0] for _ in range(110)]
        big, small = served.count("big"), served.count("small")
        assert big / max(small, 1) == pytest.approx(10, rel=0.25), (big, small)

    def test_idle_tenant_accrues_no_credit(self):
        """A tenant that idles must not burst ahead when it returns."""
        q = WeightedFairShareQueue()
        self._fill(q, ["busy"], n=200)
        for _ in range(100):  # 'busy' is served alone for a long while
            q.pop()
        self._fill(q, ["latecomer"], n=200)
        served = [q.pop()[0] for _ in range(50)]
        count = served.count("latecomer")
        assert 20 <= count <= 30, (
            f"latecomer took {count}/50 pops; an idle tenant must resume at "
            f"a fair share, not drain its backlog first"
        )

    def test_chatty_tenant_cannot_starve_others(self):
        q = WeightedFairShareQueue()
        self._fill(q, ["chatty"], n=1000)
        q.put("quiet", item(0))
        served = [q.pop()[0] for _ in range(4)]
        assert "quiet" in served

    def test_intra_tenant_priority_preserved(self):
        q = WeightedFairShareQueue()
        for i in range(5):
            q.put("a", item(i, priority=0))
        q.put("a", item(99, priority=9))
        first_of_a = next(entry for tenant, entry in iter(q.pop, None) if tenant == "a")
        assert first_of_a["task_id"] == 99

    def test_cores_weight_the_service_cost(self):
        """A multi-core task advances its tenant's clock proportionally."""
        q = WeightedFairShareQueue()
        for _ in range(10):
            q.put("wide", {"task_id": 0, "buffer": b"", "cores": 4})
            q.put("narrow", item(1))
        served = [q.pop()[0] for _ in range(10)]
        wide, narrow = served.count("wide"), served.count("narrow")
        assert narrow >= 3 * wide, (wide, narrow)

    def test_bad_weight_rejected(self):
        q = WeightedFairShareQueue()
        with pytest.raises(ValueError):
            q.set_weight("t", 0)
        with pytest.raises(ValueError):
            WeightedFairShareQueue(default_weight=0)

    def test_backlog_and_qsize_views(self):
        q = WeightedFairShareQueue()
        self._fill(q, ["a"], n=3)
        self._fill(q, ["b"], n=2)
        assert q.backlog() == {"a": 3, "b": 2}
        assert q.qsize("a") == 3 and q.qsize() == 5
        q.pop()
        assert q.qsize() == 4
