"""Unit tests for the starvation-safe priority task queue."""

import threading

from repro.scheduling.queues import PriorityTaskQueue


def item(task_id, priority=0):
    return {"task_id": task_id, "buffer": b"", "priority": priority}


def drain_ids(q):
    out = []
    while True:
        entry = q.pop()
        if entry is None:
            return out
        out.append(entry["task_id"])


class TestOrdering:
    def test_fifo_within_a_priority(self):
        q = PriorityTaskQueue()
        for i in range(5):
            q.put(item(i))
        assert drain_ids(q) == [0, 1, 2, 3, 4]

    def test_higher_priority_overtakes(self):
        q = PriorityTaskQueue()
        for i in range(5):
            q.put(item(i, priority=0))
        q.put(item(99, priority=9))
        assert drain_ids(q)[0] == 99

    def test_negative_priority_defers(self):
        q = PriorityTaskQueue()
        q.put(item(1, priority=-5))
        q.put(item(2, priority=0))
        assert drain_ids(q) == [2, 1]

    def test_pop_empty_returns_none(self):
        q = PriorityTaskQueue()
        assert q.pop() is None
        assert q.empty() and q.qsize() == 0


class TestAging:
    def test_aged_low_priority_beats_fresh_high_priority(self):
        """Starvation safety: enough accrued wait outweighs any priority gap."""
        q = PriorityTaskQueue(aging_s=0.001)  # 1 ms of waiting == 1 priority level
        old = item(1, priority=0)
        old["_vtime"] = old_vtime = -100.0  # enqueued "long ago"
        q.put(old)
        assert old["_vtime"] == old_vtime  # an existing stamp is preserved
        q.put(item(2, priority=9))  # fresh, max priority
        assert drain_ids(q) == [1, 2]

    def test_requeue_restores_original_position(self):
        """A dispatched-then-requeued task re-enters where it left, not at the back."""
        q = PriorityTaskQueue()
        first, second = item(1, priority=5), item(2, priority=5)
        q.put(first)
        q.put(second)
        popped = q.pop()
        assert popped["task_id"] == 1
        q.put(popped)  # e.g. its manager was lost
        assert drain_ids(q) == [1, 2]  # still ahead of the task enqueued after it

    def test_requeue_keeps_priority_over_later_bulk(self):
        q = PriorityTaskQueue()
        q.put(item(1, priority=9))
        requeued = q.pop()
        for i in range(10, 15):
            q.put(item(i, priority=0))
        q.put(requeued)
        assert drain_ids(q)[0] == 1


class TestThreading:
    def test_concurrent_put_pop(self):
        q = PriorityTaskQueue()
        n_producers, per_producer = 4, 200
        popped = []
        pop_lock = threading.Lock()
        done = threading.Event()

        def produce(base):
            for i in range(per_producer):
                q.put(item(base + i, priority=i % 3))

        def consume():
            while not (done.is_set() and q.empty()):
                entry = q.pop()
                if entry is not None:
                    with pop_lock:
                        popped.append(entry["task_id"])

        consumers = [threading.Thread(target=consume) for _ in range(2)]
        producers = [threading.Thread(target=produce, args=(k * 1000,)) for k in range(n_producers)]
        for t in consumers + producers:
            t.start()
        for t in producers:
            t.join()
        done.set()
        for t in consumers:
            t.join(timeout=5)
        assert sorted(popped) == sorted(k * 1000 + i for k in range(n_producers) for i in range(per_producer))

