"""Unit tests for the DFK-level multi-executor router."""

import random

import pytest

from repro.errors import NoSuchExecutorError
from repro.scheduling.router import ExecutorRouter, INTERNAL_EXECUTOR
from repro.scheduling.spec import ResourceSpec


class FakeExecutor:
    def __init__(self, outstanding=0, workers=1, bad=False, specs=True):
        self.outstanding = outstanding
        self.connected_workers = workers
        self.bad_state_is_set = bad
        self.supports_resource_specs = specs


def make_router(execs, **kwargs):
    return ExecutorRouter(execs, rng=random.Random(0), **kwargs)


class TestLabelMatch:
    def test_join_routes_internally(self):
        router = make_router({"a": FakeExecutor()})
        assert router.route("all", join=True) == INTERNAL_EXECUTOR

    def test_single_label_string(self):
        router = make_router({"a": FakeExecutor(), "b": FakeExecutor()})
        assert router.route("b") == "b"

    def test_unknown_label_raises(self):
        router = make_router({"a": FakeExecutor()})
        with pytest.raises(NoSuchExecutorError):
            router.route("missing")
        with pytest.raises(NoSuchExecutorError):
            router.route(["a", "missing"])

    def test_spec_affinity_overrides_requested(self):
        router = make_router({"a": FakeExecutor(), "b": FakeExecutor()})
        spec = ResourceSpec(executors=("b",))
        assert router.route("a", spec=spec) == "b"

    def test_empty_request_falls_back_to_all(self):
        router = make_router({"a": FakeExecutor()})
        assert router.route([]) == "a"
        assert router.route(None) == "a"


class TestLoadAwareSpillover:
    def test_least_loaded_wins(self):
        router = make_router({"hot": FakeExecutor(outstanding=100, workers=2), "cold": FakeExecutor(workers=2)})
        assert all(router.route("all") == "cold" for _ in range(10))

    def test_load_is_per_worker(self):
        # 10 tasks over 100 workers is lighter than 2 tasks over 1 worker.
        router = make_router(
            {"big": FakeExecutor(outstanding=10, workers=100), "small": FakeExecutor(outstanding=2, workers=1)}
        )
        assert router.route("all") == "big"

    def test_ties_are_randomized(self):
        router = make_router({"a": FakeExecutor(), "b": FakeExecutor()})
        chosen = {router.route("all") for _ in range(50)}
        assert chosen == {"a", "b"}

    def test_bad_state_excluded_while_healthy_peers_exist(self):
        router = make_router({"bad": FakeExecutor(bad=True), "ok": FakeExecutor(outstanding=1000)})
        assert router.route("all") == "ok"

    def test_all_bad_keeps_requested_placement(self):
        # The submission failure then flows through the normal retry path.
        router = make_router({"bad": FakeExecutor(bad=True)})
        assert router.route("all") == "bad"


class TestSpecCapability:
    def test_nondefault_spec_avoids_executors_that_cannot_honor_it(self):
        # "llex" would reject the spec terminally; "threads" would silently
        # drop the cores reservation. Both must be skipped while a capable
        # executor exists — regardless of load.
        router = make_router(
            {
                "llex": FakeExecutor(specs=False),
                "threads": FakeExecutor(specs=False),
                "htex": FakeExecutor(outstanding=1000, specs=True),
            }
        )
        spec = ResourceSpec(cores=4, priority=2)
        assert all(router.route("all", spec=spec) == "htex" for _ in range(10))

    def test_default_spec_uses_every_executor(self):
        router = make_router({"a": FakeExecutor(specs=False), "b": FakeExecutor(specs=True)})
        chosen = {router.route("all", spec=ResourceSpec()) for _ in range(50)}
        assert chosen == {"a", "b"}

    def test_no_capable_executor_keeps_candidates_for_advisory_fields(self):
        # Priority is advisory: without a spec-capable executor the task
        # still runs, and the candidate handles (or rejects) it itself.
        router = make_router({"llex": FakeExecutor(specs=False)})
        assert router.route("all", spec=ResourceSpec(priority=1)) == "llex"

    def test_cores_reservation_with_no_capable_executor_raises(self):
        # A cores reservation is a hard constraint: silently running a
        # multi-core task as one slot would be wrong, so refuse at submit.
        from repro.errors import ResourceSpecError

        router = make_router({"threads": FakeExecutor(specs=False)})
        with pytest.raises(ResourceSpecError, match="4 cores"):
            router.route("all", spec=ResourceSpec(cores=4))


class TestBackpressure:
    def test_saturated_executor_sheds_to_peer(self):
        execs = {"full": FakeExecutor(outstanding=5, workers=100), "free": FakeExecutor(outstanding=4, workers=1)}
        # Without a cap, per-worker load prefers "full" (0.05 vs 4.0)...
        assert make_router(execs).route("all") == "full"
        # ...but at the cap it stops taking new work while a peer is below it.
        assert make_router(execs, backpressure=5).route("all") == "free"

    def test_every_executor_saturated_degrades_to_least_loaded(self):
        execs = {
            "a": FakeExecutor(outstanding=50, workers=1),
            "b": FakeExecutor(outstanding=9, workers=1),
        }
        router = make_router(execs, backpressure=5)
        assert router.route("all") == "b"

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            make_router({"a": FakeExecutor()}, backpressure=0)
