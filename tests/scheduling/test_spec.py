"""Unit tests for ResourceSpec validation and serialization."""

import pytest

from repro.errors import ResourceSpecError
from repro.scheduling.spec import DEFAULT_SPEC, ResourceSpec


class TestValidation:
    def test_defaults(self):
        spec = ResourceSpec()
        assert spec.cores == 1
        assert spec.priority == 0
        assert spec.memory_mb is None and spec.walltime_s is None and spec.executors is None
        assert spec.is_default

    @pytest.mark.parametrize("cores", [0, -1, 1.5, "2", True])
    def test_bad_cores(self, cores):
        with pytest.raises(ResourceSpecError):
            ResourceSpec(cores=cores)

    @pytest.mark.parametrize("memory", [0, -5, 2.5, True])
    def test_bad_memory(self, memory):
        with pytest.raises(ResourceSpecError):
            ResourceSpec(memory_mb=memory)

    @pytest.mark.parametrize("walltime", [0, -1.0, "10", True])
    def test_bad_walltime(self, walltime):
        with pytest.raises(ResourceSpecError):
            ResourceSpec(walltime_s=walltime)

    @pytest.mark.parametrize("priority", [1.5, "high", None, True])
    def test_bad_priority(self, priority):
        with pytest.raises(ResourceSpecError):
            ResourceSpec(priority=priority)

    def test_bad_executors(self):
        with pytest.raises(ResourceSpecError):
            ResourceSpec(executors="htex")  # must be a sequence, not a bare string
        with pytest.raises(ResourceSpecError):
            ResourceSpec(executors=("htex", ""))
        with pytest.raises(ResourceSpecError, match="must not be empty"):
            ResourceSpec(executors=())  # empty affinity would leave no candidates

    def test_negative_priority_allowed(self):
        assert ResourceSpec(priority=-3).priority == -3


class TestFromUser:
    def test_none_is_the_shared_default(self):
        assert ResourceSpec.from_user(None) is DEFAULT_SPEC
        assert ResourceSpec.from_user({}) == DEFAULT_SPEC

    def test_spec_passthrough(self):
        spec = ResourceSpec(cores=2)
        assert ResourceSpec.from_user(spec) is spec

    def test_mapping(self):
        spec = ResourceSpec.from_user(
            {"cores": 4, "memory_mb": 512, "walltime_s": 30, "priority": 9, "executors": ["a", "b"]}
        )
        assert spec.cores == 4
        assert spec.executors == ("a", "b")

    def test_executors_string_normalized(self):
        assert ResourceSpec.from_user({"executors": "htex"}).executors == ("htex",)

    def test_unknown_keys_rejected_with_allowed_list(self):
        with pytest.raises(ResourceSpecError, match="core_count") as exc:
            ResourceSpec.from_user({"core_count": 4})
        assert "cores" in str(exc.value)  # the error teaches the allowed keys

    def test_non_mapping_rejected(self):
        with pytest.raises(ResourceSpecError):
            ResourceSpec.from_user(4)

    def test_with_priority(self):
        spec = ResourceSpec(cores=2).with_priority(7)
        assert (spec.cores, spec.priority) == (2, 7)

    @pytest.mark.parametrize("priority", [9.7, True, "high"])
    def test_with_priority_validates_like_construction(self, priority):
        with pytest.raises(ResourceSpecError):
            ResourceSpec().with_priority(priority)


class TestWireForm:
    def test_default_spec_serializes_empty(self):
        # Executors that predate the subsystem must keep seeing {}.
        assert ResourceSpec().to_wire() == {}

    def test_round_trip(self):
        spec = ResourceSpec(cores=4, memory_mb=256, walltime_s=10.0, priority=3, executors=("x",))
        assert ResourceSpec.from_wire(spec.to_wire()) == spec

    def test_wire_is_minimal(self):
        assert ResourceSpec(priority=2).to_wire() == {"priority": 2}
        assert ResourceSpec(cores=8).to_wire() == {"cores": 8}
