"""Unit tests for the serialization facade."""

import math
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeserializationError, SerializationError
from repro.serialize import (
    deserialize,
    pack_apply_message,
    serialize,
    unpack_apply_message,
)
from repro.serialize.facade import CodeSerializer, PickleSerializer, _needs_by_value


def module_level_function(x, y=3):
    return x * y


class TestBasicRoundTrips:
    def test_simple_objects(self):
        for obj in [1, 2.5, "hello", b"bytes", None, True, [1, 2, 3], {"a": 1}, (1, 2), {1, 2}]:
            assert deserialize(serialize(obj)) == obj

    def test_module_function_roundtrip(self):
        func = deserialize(serialize(module_level_function))
        assert func(4) == 12

    def test_nested_structure(self):
        obj = {"list": [1, [2, [3]]], "tuple": (None, "x"), "float": math.pi}
        assert deserialize(serialize(obj)) == obj

    def test_unknown_tag_rejected(self):
        with pytest.raises(DeserializationError):
            deserialize(b"99" + pickle.dumps(1))

    def test_short_buffer_rejected(self):
        with pytest.raises(DeserializationError):
            deserialize(b"0")

    def test_unserializable_object_raises(self):
        # Generators can be neither pickled nor code-serialized.
        gen = (i for i in range(3))
        with pytest.raises(SerializationError):
            serialize(gen)


class TestByValueFunctions:
    def test_lambda_roundtrip(self):
        f = lambda x: x + 10  # noqa: E731
        g = deserialize(serialize(f))
        assert g(5) == 15

    def test_closure_roundtrip(self):
        def outer(n):
            def inner(x):
                return x + n

            return inner

        restored = deserialize(serialize(outer(7)))
        assert restored(1) == 8

    def test_defaults_preserved(self):
        def f(a, b=41):
            return a + b

        # force by-value path (nested function)
        restored = deserialize(serialize(f))
        assert restored(1) == 42

    def test_captured_module_global(self):
        def uses_math(x):
            return math.sqrt(x)

        restored = deserialize(serialize(uses_math))
        assert restored(16) == 4.0

    def test_captured_helper_function(self):
        def helper(x):
            return x * 2

        def uses_helper(x):
            return helper(x) + 1

        restored = deserialize(serialize(uses_helper))
        assert restored(10) == 21

    def test_recursive_function(self):
        def fact(n):
            return 1 if n <= 1 else n * fact(n - 1)

        restored = deserialize(serialize(fact))
        assert restored(5) == 120

    def test_needs_by_value_detection(self):
        assert not _needs_by_value(module_level_function)
        assert _needs_by_value(lambda x: x)

        def nested():
            return 1

        assert _needs_by_value(nested)


class TestSerializers:
    def test_pickle_serializer_direct(self):
        s = PickleSerializer()
        assert s.deserialize(s.serialize({"k": [1, 2]})) == {"k": [1, 2]}

    def test_code_serializer_rejects_non_function(self):
        with pytest.raises(SerializationError):
            CodeSerializer().serialize(42)

    def test_code_serializer_kwdefaults(self):
        def f(*, flag=True):
            return flag

        restored = CodeSerializer().deserialize(CodeSerializer().serialize(f))
        assert restored() is True


class TestApplyMessages:
    def test_pack_unpack(self):
        buffer = pack_apply_message(module_level_function, (6,), {"y": 7})
        func, args, kwargs = unpack_apply_message(buffer)
        assert func(*args, **kwargs) == 42

    def test_pack_with_lambda_argument(self):
        def apply(f, v):
            return f(v)

        buffer = pack_apply_message(apply, (lambda x: x * 3, 5), {})
        func, args, kwargs = unpack_apply_message(buffer)
        assert func(*args, **kwargs) == 15

    def test_malformed_apply_message(self):
        with pytest.raises(DeserializationError):
            unpack_apply_message(b"not an apply message")


class TestPropertyBased:
    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False) | st.text(),
            lambda children: st.lists(children, max_size=4) | st.dictionaries(st.text(max_size=5), children, max_size=4),
            max_leaves=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_arbitrary_json_like(self, obj):
        assert deserialize(serialize(obj)) == obj

    @given(st.integers(), st.integers())
    @settings(max_examples=30, deadline=None)
    def test_apply_message_roundtrip(self, a, b):
        buffer = pack_apply_message(module_level_function, (a,), {"y": b})
        func, args, kwargs = unpack_apply_message(buffer)
        assert func(*args, **kwargs) == a * b


class TestSerializeCallableCache:
    def test_by_reference_function_is_cached(self):
        from repro.serialize import serialize_callable

        first = serialize_callable(module_level_function)
        second = serialize_callable(module_level_function)
        assert first is second  # cache hit returns the identical buffer
        assert deserialize(first)(4) == 12

    def test_lambda_bypasses_cache(self):
        from repro.serialize import serialize_callable

        offset = [10]
        fn = lambda x: x + offset[0]  # noqa: E731
        assert deserialize(serialize_callable(fn))(1) == 11
        offset[0] = 20
        assert deserialize(serialize_callable(fn))(1) == 21

    def test_rebound_module_function_sees_global_mutation(self):
        """A function whose module name was rebound (the @python_app pattern)
        falls back to by-value serialization and must NOT be cached: later
        mutations of its captured globals have to reach the workers."""
        import sys
        import types as types_module

        from repro.serialize import serialize_callable

        mod = types_module.ModuleType("repro_test_rebound_mod")
        exec("THRESHOLD = 5\ndef above(x):\n    return x > THRESHOLD\n", mod.__dict__)
        sys.modules["repro_test_rebound_mod"] = mod
        try:
            func = mod.above
            mod.above = object()  # rebinding breaks pickle-by-reference
            with pytest.raises(Exception):
                pickle.dumps(func)
            assert deserialize(serialize_callable(func))(10) is True
            mod.THRESHOLD = 50
            assert deserialize(serialize_callable(func))(10) is False
        finally:
            del sys.modules["repro_test_rebound_mod"]

    def test_cached_function_rebound_after_caching_goes_by_value(self):
        """Rebinding a module name AFTER its function was cached must
        invalidate the cached by-reference buffer, or workers would resolve
        the name to the new (wrong) object."""
        import sys
        import types as types_module

        from repro.serialize import serialize_callable

        mod = types_module.ModuleType("repro_test_late_rebound_mod")
        exec("def double(x):\n    return 2 * x\n", mod.__dict__)
        sys.modules["repro_test_late_rebound_mod"] = mod
        try:
            func = mod.double
            cached = serialize_callable(func)  # by reference, cached
            assert deserialize(cached)(4) == 8
            mod.double = lambda x: -1  # rebind the name out from under the cache
            fresh = serialize_callable(func)
            assert fresh != cached  # must not serve the stale by-reference buffer
            assert deserialize(fresh)(4) == 8  # by-value: still the original body
        finally:
            del sys.modules["repro_test_late_rebound_mod"]
