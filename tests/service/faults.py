"""Fault-injection helpers shared by the TCP and HTTP gateway test suites.

Three fault shapes, matching how the service layer actually fails in the
wild:

* :class:`FaultyProxy` — a TCP proxy that understands the repo's 4-byte
  length-prefixed framing and can sever connections after forwarding a
  chosen number of server->client frames (deterministic mid-stream cuts),
  sever everything immediately, or stall (stop forwarding while keeping the
  sockets open — the classic half-dead connection).
* :class:`StalledReader` — a protocol-correct peer that registers, says
  hello, then never reads again, so the server-side socket buffer fills.
  Exercises the gateway's dedicated-sender isolation: one comatose tenant
  must not block anyone else's results.
* :class:`GatewayHarness` — runs a gateway (and optionally an HTTP edge) on
  *stable* ports over one long-lived DataFlowKernel, with ``kill()`` /
  ``restart()``, so tests can crash the service mid-run and assert that
  clients reconnect to the reincarnation at the same address.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import List, Optional, Tuple

from repro.comms.protocol import recv_frame, send_frame
from repro.service import protocol
from repro.service.gateway import WorkflowGateway
from repro.service.http_edge import HttpEdge

_HEADER = struct.Struct("!I")


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def free_port(host: str = "127.0.0.1") -> int:
    """Reserve an ephemeral port number (released immediately; SO_REUSEADDR
    on the eventual listener makes the tiny race window a non-issue here)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


class _ProxyLink:
    """One proxied connection: client socket + upstream socket + pumps."""

    def __init__(self, proxy: "FaultyProxy", client: socket.socket):
        self.proxy = proxy
        self.client = client
        self.upstream = socket.create_connection(
            (proxy.target_host, proxy.target_port), timeout=5.0
        )
        self.upstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.alive = True
        self.threads = [
            threading.Thread(target=self._pump_up, name="proxy-up", daemon=True),
            threading.Thread(target=self._pump_down, name="proxy-down", daemon=True),
        ]
        for t in self.threads:
            t.start()

    def _pump_up(self) -> None:
        """client -> server: raw byte relay (frames counted downstream only)."""
        try:
            while self.alive:
                self.proxy.stall_gate.wait()
                data = self.client.recv(65536)
                if not data:
                    break
                self.upstream.sendall(data)
        except OSError:
            pass
        self.close()

    def _pump_down(self) -> None:
        """server -> client: frame-by-frame relay so cuts land on frame
        boundaries and ``drop_after`` counts are exact. In unframed mode
        (HTTP) the relay is raw chunks and ``drop_after`` counts chunks."""
        if not self.proxy.framed:
            try:
                while self.alive:
                    self.proxy.stall_gate.wait()
                    data = self.upstream.recv(65536)
                    if not data:
                        break
                    if not self.proxy._admit_frame():
                        self.close()
                        return
                    self.client.sendall(data)
            except OSError:
                pass
            self.close()
            return
        buffer = b""
        try:
            while self.alive:
                self.proxy.stall_gate.wait()
                while len(buffer) >= _HEADER.size:
                    (length,) = _HEADER.unpack_from(buffer)
                    end = _HEADER.size + length
                    if len(buffer) < end:
                        break
                    frame, buffer = buffer[:end], buffer[end:]
                    if not self.proxy._admit_frame():
                        self.close()
                        return
                    self.client.sendall(frame)
                data = self.upstream.recv(65536)
                if not data:
                    break
                buffer += data
        except OSError:
            pass
        self.close()

    def close(self) -> None:
        self.alive = False
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class FaultyProxy:
    """TCP proxy between a client and a gateway with injectable faults.

    Point a client at ``proxy.host:proxy.port``; traffic flows to
    ``target_host:target_port`` until a fault is injected. Reconnections
    through the proxy get fresh, healthy links (faults are one-shot unless
    re-armed), which is exactly what reconnect-and-resume tests need.
    """

    def __init__(self, target_host: str, target_port: int, host: str = "127.0.0.1",
                 framed: bool = True):
        self.target_host = target_host
        self.target_port = target_port
        #: True for the gateway's length-prefixed TCP protocol (cuts land on
        #: frame boundaries); False for byte streams like HTTP/SSE, where
        #: ``drop_after`` counts relay chunks instead of protocol frames.
        self.framed = framed
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()
        self.frames_forwarded = 0
        self._drop_after: Optional[int] = None
        #: Cleared to pause both pump directions (stalled connection).
        self.stall_gate = threading.Event()
        self.stall_gate.set()
        self._lock = threading.Lock()
        self._links: List[_ProxyLink] = []
        self._stopping = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="proxy-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                link = _ProxyLink(self, client)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._links = [lnk for lnk in self._links if lnk.alive]
                self._links.append(link)

    def _admit_frame(self) -> bool:
        """Called by pumps before forwarding each server->client frame."""
        with self._lock:
            if self._drop_after is not None and self.frames_forwarded >= self._drop_after:
                self._drop_after = None  # one-shot: reconnects start healthy
                return False
            self.frames_forwarded += 1
            return True

    # -- fault controls -------------------------------------------------
    def drop_after(self, n_more_frames: int) -> None:
        """Sever the link carrying the (current + n)-th server->client frame."""
        with self._lock:
            self._drop_after = self.frames_forwarded + n_more_frames

    def sever_all(self) -> None:
        """Cut every live proxied connection right now (partition)."""
        with self._lock:
            links, self._links = self._links, []
        for link in links:
            link.close()

    def stall(self) -> None:
        """Stop forwarding in both directions, keeping sockets open."""
        self.stall_gate.clear()

    def resume(self) -> None:
        self.stall_gate.set()

    def live_links(self) -> int:
        with self._lock:
            self._links = [lnk for lnk in self._links if lnk.alive]
            return len(self._links)

    def close(self) -> None:
        self._stopping = True
        self.resume()
        try:
            self._listener.close()
        except OSError:
            pass
        self.sever_all()

    def __enter__(self) -> "FaultyProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StalledReader:
    """A registered, authenticated peer that stops reading after hello.

    Submits can still be pushed through :meth:`send`; the receive side is
    never drained, so gateway->client results pile up in kernel socket
    buffers. The gateway's sender thread must skip past this tenant without
    stalling others.
    """

    def __init__(self, host: str, port: int, tenant: str,
                 token: Optional[str] = None, identity: str = "stalled-reader"):
        self.sock = socket.create_connection((host, port), timeout=5.0)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Shrink our receive buffer so "stalled" bites after a handful of
        # frames instead of megabytes of kernel buffering.
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        send_frame(self.sock, {"identity": identity, "kind": "stalled-reader"})
        send_frame(self.sock, protocol.hello(tenant, token))
        self.sock.settimeout(5.0)
        self.welcome = recv_frame(self.sock)  # the last read we ever do
        self.sock.settimeout(None)

    def submit(self, cid: int, buffer: bytes) -> None:
        send_frame(self.sock, protocol.submit(cid, buffer))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class GatewayHarness:
    """A killable/restartable gateway (+ optional HTTP edge) on fixed ports.

    The DataFlowKernel(s) survive restarts — only the service layer dies,
    the same blast radius as a real gateway crash — and because the ports
    are pinned, clients retrying their last-known address reach the new
    incarnation. ``dfk`` may be a list of kernels to run a sharded gateway.

    Without a ``store_path``, a restarted gateway has **no sessions**:
    resumes are answered with auth errors (HTTP 410 through the edge),
    which is what drives the client-side fresh-session + resubmit recovery
    path. *With* a ``store_path``, the new incarnation reloads every
    durable session, so clients transparently resume — including after
    ``kill(hard=True)``, which abandons un-flushed store writes the way a
    kill -9 would.
    """

    def __init__(self, dfk, token_store=None, with_http: bool = False,
                 registry=None, store_path: Optional[str] = None,
                 **gateway_kwargs):
        self.dfk = dfk
        self.token_store = token_store
        self.with_http = with_http
        self.registry = dict(registry or {})
        self.store_path = store_path
        self.gateway_kwargs = gateway_kwargs
        self.gw_port = free_port()
        self.http_port = free_port() if with_http else None
        self.gateway: Optional[WorkflowGateway] = None
        self.edge: Optional[HttpEdge] = None
        self.incarnation = 0

    # -- addresses ------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return ("127.0.0.1", self.gw_port)

    @property
    def http_url(self) -> str:
        assert self.http_port is not None
        return f"http://127.0.0.1:{self.http_port}"

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "GatewayHarness":
        assert self.gateway is None, "already running"
        # Rebinding the pinned port can race sockets of the previous
        # incarnation that are still draining; retry briefly.
        deadline = time.time() + 5.0
        while True:
            try:
                self.gateway = WorkflowGateway(
                    self.dfk, host="127.0.0.1", port=self.gw_port,
                    token_store=self.token_store, store_path=self.store_path,
                    **self.gateway_kwargs,
                ).start()
                break
            except OSError:
                if time.time() > deadline:
                    raise
                time.sleep(0.05)
        if self.with_http:
            self.edge = HttpEdge(self.gateway, host="127.0.0.1", port=self.http_port,
                                 registry=self.registry)
            self.edge.start()
        self.incarnation += 1
        return self

    def kill(self, hard: bool = False) -> None:
        """Tear the service down (edge first, then gateway). In-flight DFK
        tasks keep running; their results go nowhere until a client
        resubmits (or, with a durable store, resumes) after the restart.
        ``hard=True`` abandons queued store writes — the kill -9 double:
        only group-committed state reaches the next incarnation."""
        if self.edge is not None:
            self.edge.stop()
            self.edge = None
        if self.gateway is not None:
            if hard:
                self.gateway.kill()
            else:
                self.gateway.stop()
            self.gateway = None

    def restart(self, settle_s: float = 0.05, hard: bool = False) -> "GatewayHarness":
        self.kill(hard=hard)
        # SO_REUSEADDR lets the new listener take the port immediately, but
        # give lingering reader threads a beat to drain on a 1-core box.
        time.sleep(settle_s)
        return self.start()

    def close(self) -> None:
        self.kill()

    def __enter__(self) -> "GatewayHarness":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
