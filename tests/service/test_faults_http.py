"""Reconnect-and-resume behaviour of the HTTP/SSE edge and the
:class:`AsyncServiceClient` SDK under injected faults (see :mod:`faults`).

The acceptance bar (mirrors ISSUE 6): kill the gateway mid-run with a fleet
of streaming HTTP clients — every client recovers every acked result, with
zero duplicate deliveries.
"""

import asyncio
import http.client
import json
import time

import pytest

import repro
from repro import Config
from repro.executors import ThreadPoolExecutor
from repro.service import AsyncServiceClient, WorkflowGateway
from repro.service.http_edge import HttpEdge

from faults import FaultyProxy, GatewayHarness, wait_for


def double(x):
    return x * 2


def slow_double(x, duration=0.2):
    time.sleep(duration)
    return x * 2


#: (arg) log of executions of the registered ``bump`` fn, for dedup asserts.
BUMP_CALLS = []


def bump(x, duration=0.0):
    if duration:
        time.sleep(duration)
    BUMP_CALLS.append(x)
    return x + 1


REGISTRY = {"double": double, "bump": bump}


@pytest.fixture
def gw_dfk(run_dir):
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=8)],
        run_dir=run_dir,
        strategy="none",
    )
    dfk = repro.load(cfg)
    yield dfk
    repro.clear()


@pytest.fixture
def edge(gw_dfk):
    with WorkflowGateway(gw_dfk, session_ttl_s=10.0) as gw:
        server = HttpEdge(gw, registry=REGISTRY)
        server.start()
        try:
            yield server
        finally:
            server.stop()


def http_json(host, port, method, path, body=None, headers=None, timeout=15):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    payload = json.dumps(body) if body is not None else None
    conn.request(method, path, payload, dict(headers or {}))
    resp = conn.getresponse()
    data = resp.read()
    conn.close()
    return resp.status, json.loads(data) if data else {}


class RecordingClient(AsyncServiceClient):
    """An AsyncServiceClient that records which cid each delivery resolved,
    so tests can assert exactly-once delivery (not just eventual results)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.resolved = []  # cids, in resolution order

    def _deliver(self, event):
        try:
            cid = int(event.task_status().task_id.rsplit(":", 1)[1])
        except (ValueError, KeyError):
            cid = None
        handle = self._handles.get(cid) if cid is not None else None
        was_done = handle is not None and handle.future.done()
        super()._deliver(event)
        if handle is not None and handle.future.done() and not was_done:
            self.resolved.append(cid)


class TestSseResumeUnderFaults:
    def test_sse_cut_mid_stream_delivers_everything_exactly_once(self, edge):
        """Sever every HTTP connection (SSE included) partway through the
        result stream: the SDK reconnects with Last-Event-ID and the replay
        fills in exactly what was missed — every future resolves, and no cid
        is delivered twice."""

        async def main():
            with FaultyProxy(edge.host, edge.port, framed=False) as proxy:
                client = RecordingClient(f"http://{proxy.host}:{proxy.port}",
                                         tenant="alice")
                async with client:
                    handles = [await client.submit(slow_double, i)
                               for i in range(6)]
                    # Let at least one result flow through the doomed
                    # connection so the cut lands mid-stream.
                    assert await handles[0].result(timeout=30) == 0
                    proxy.sever_all()
                    values = [await h.result(timeout=30) for h in handles]
                    assert values == [i * 2 for i in range(6)]
                    assert sorted(client.resolved) == list(range(6))
                    assert len(client.resolved) == 6  # exactly once each

        asyncio.run(main())

    def test_resolved_handles_are_released(self, edge):
        """Regression: a long-lived client used to keep one AsyncTaskHandle
        (and its result payload) per finished task forever; delivery must
        drop the bookkeeping once the future resolves."""

        async def main():
            async with AsyncServiceClient(f"http://{edge.host}:{edge.port}",
                                          tenant="alice") as client:
                handles = [await client.submit(double, i) for i in range(8)]
                assert [await h.result(timeout=30) for h in handles] \
                    == [i * 2 for i in range(8)]
                assert client._handles == {}
                assert client._pending_bodies == {}

        asyncio.run(main())


class TestDuplicateResubmission:
    def test_duplicate_cid_of_finished_task_does_not_rerun(self, edge):
        """Resubmitting a client_task_id whose result is already known is
        answered 202 without executing the function again."""
        BUMP_CALLS.clear()
        headers = {"X-Repro-Tenant": "alice"}
        _status, opened = http_json(edge.host, edge.port, "POST", "/v1/session",
                                    {}, headers)
        sess = {**headers, "X-Repro-Session": opened["session"],
                "X-Repro-Session-Token": opened["session_token"]}
        body = {"fn": "bump", "args": [41], "client_task_id": 3}
        status, reply = http_json(edge.host, edge.port, "POST", "/v1/tasks",
                                  body, sess)
        assert status == 202
        task_id = reply["task_id"]
        assert wait_for(
            lambda: http_json(edge.host, edge.port, "GET", f"/v1/tasks/{task_id}",
                              None, sess)[1].get("status") == "done",
            timeout=15,
        )
        status, reply = http_json(edge.host, edge.port, "POST", "/v1/tasks",
                                  body, sess)
        assert status == 202
        assert reply["task_id"] == task_id
        assert BUMP_CALLS.count(41) == 1

    def test_duplicate_cid_while_running_executes_once(self, edge):
        """A duplicate submit racing the original's execution is coalesced:
        both get 202, the function runs once, one result is delivered."""
        BUMP_CALLS.clear()
        headers = {"X-Repro-Tenant": "alice"}
        _status, opened = http_json(edge.host, edge.port, "POST", "/v1/session",
                                    {}, headers)
        sess = {**headers, "X-Repro-Session": opened["session"],
                "X-Repro-Session-Token": opened["session_token"]}
        body = {"fn": "bump", "args": [7], "kwargs": {"duration": 0.3},
                "client_task_id": 9}
        for _ in range(2):  # original + racing duplicate
            status, reply = http_json(edge.host, edge.port, "POST", "/v1/tasks",
                                      body, sess)
            assert status == 202
        task_id = reply["task_id"]
        assert wait_for(
            lambda: http_json(edge.host, edge.port, "GET", f"/v1/tasks/{task_id}",
                              None, sess)[1].get("status") == "done",
            timeout=15,
        )
        assert BUMP_CALLS.count(7) == 1


class TestGatewayRestartAcceptance:
    N_CLIENTS = 32

    def test_32_streaming_clients_recover_every_acked_result(self, gw_dfk):
        """ISSUE 6 acceptance: 32 HTTP clients streaming, gateway killed
        mid-run. Every acked submission resolves to the right value, every
        client's delivery log covers each cid exactly once, and submissions
        made after the restart land in the recovered sessions."""

        async def run_client(i, client):
            base = i * 100
            # Acked AND delivered before the crash.
            warm = await client.submit(double, base)
            assert await warm.result(timeout=60) == base * 2
            # Acked, still running at the crash: their results are lost with
            # the old gateway and must come back via resubmission.
            inflight = [await client.submit(slow_double, base + j)
                        for j in (1, 2)]
            return [warm] + inflight

        async def finish_client(i, client, handles):
            base = i * 100
            # Post-restart submission: exercises 410 -> fresh session.
            late = await client.submit(double, base + 3)
            handles.append(late)
            values = [await h.result(timeout=60) for h in handles]
            assert values == [base * 2, (base + 1) * 2, (base + 2) * 2,
                              (base + 3) * 2]
            assert sorted(client.resolved) == [0, 1, 2, 3]
            assert len(client.resolved) == 4  # zero duplicate deliveries

        async def main(harness):
            clients = [
                RecordingClient(harness.http_url, tenant=f"tenant-{i:02d}",
                                request_timeout=15)
                for i in range(self.N_CLIENTS)
            ]
            await asyncio.gather(*(c.open() for c in clients))
            try:
                all_handles = await asyncio.gather(
                    *(run_client(i, c) for i, c in enumerate(clients))
                )
                # Off-loop so the clients live through the outage in real
                # time (reconnect backoff, refused connections) instead of
                # the world pausing while the gateway restarts.
                await asyncio.to_thread(harness.restart, 0.2)
                await asyncio.gather(
                    *(finish_client(i, c, h)
                      for i, (c, h) in enumerate(zip(clients, all_handles)))
                )
            finally:
                await asyncio.gather(*(c.close() for c in clients),
                                     return_exceptions=True)

        with GatewayHarness(gw_dfk, with_http=True, registry=REGISTRY) as harness:
            asyncio.run(main(harness))
