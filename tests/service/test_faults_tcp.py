"""Reconnect-and-resume behaviour of the TCP service stack under injected
faults (see :mod:`faults` for the injection helpers)."""

import time

import pytest

import repro
from repro import Config
from repro.comms.client import MessageClient
from repro.errors import ServiceError
from repro.executors import ThreadPoolExecutor
from repro.serialize import pack_apply_message
from repro.service import ServiceClient, WorkflowGateway, protocol

from faults import FaultyProxy, GatewayHarness, StalledReader, wait_for


def double(x):
    return x * 2


def slow_double(x, duration=0.02):
    time.sleep(duration)
    return x * 2


@pytest.fixture
def gw_dfk(run_dir):
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=4)],
        run_dir=run_dir,
        strategy="none",
    )
    dfk = repro.load(cfg)
    yield dfk
    repro.clear()


@pytest.fixture
def gateway(gw_dfk):
    with WorkflowGateway(gw_dfk, session_ttl_s=10.0) as gw:
        yield gw


class TestFaultyProxy:
    def test_passthrough_roundtrip(self, gateway):
        """The proxy itself is transparent when no fault is armed."""
        with FaultyProxy(gateway.host, gateway.port) as proxy:
            with ServiceClient(proxy.host, proxy.port, tenant="alice") as client:
                futures = [client.submit(double, i) for i in range(5)]
                assert [f.result(timeout=10) for f in futures] == [0, 2, 4, 6, 8]
            assert proxy.frames_forwarded >= 6  # welcome + 5 results at least

    def test_drop_mid_stream_recovers_every_acked_result(self, gateway):
        """Cut the link partway through the result stream: the client must
        resume the session and recover every result, including those that
        completed while it was disconnected."""
        with FaultyProxy(gateway.host, gateway.port) as proxy:
            client = ServiceClient(
                proxy.host, proxy.port, tenant="alice",
                reconnect_interval=0.05, max_reconnect_attempts=20,
            )
            try:
                # Arm the cut mid-run: welcome(1) + ~20 accepted frames land
                # first, so frame ~30 falls inside the result stream.
                proxy.drop_after(30)
                futures = [client.submit(slow_double, i) for i in range(20)]
                assert [f.result(timeout=30) for f in futures] == [
                    i * 2 for i in range(20)
                ]
                assert client.reconnects >= 1
            finally:
                client.close()

    def test_partition_heals(self, gateway):
        """sever_all mid-flight looks like a network partition; reconnects
        through the proxy get fresh healthy links and the run completes."""
        with FaultyProxy(gateway.host, gateway.port) as proxy:
            client = ServiceClient(
                proxy.host, proxy.port, tenant="alice",
                reconnect_interval=0.05, max_reconnect_attempts=20,
            )
            try:
                futures = [client.submit(slow_double, i) for i in range(16)]
                proxy.sever_all()
                assert [f.result(timeout=30) for f in futures] == [
                    i * 2 for i in range(16)
                ]
                assert client.reconnects >= 1
            finally:
                client.close()

    def test_stall_then_resume_delivers_without_reconnect(self, gateway):
        """A stalled (not severed) link delays results; once forwarding
        resumes they arrive on the same connection — no resume needed."""
        with FaultyProxy(gateway.host, gateway.port) as proxy:
            client = ServiceClient(proxy.host, proxy.port, tenant="alice")
            try:
                first = client.submit(double, 1)
                assert first.result(timeout=10) == 2
                proxy.stall()
                futures = [client.submit(double, i) for i in range(4)]
                time.sleep(0.3)
                assert not any(f.done() for f in futures)
                proxy.resume()
                assert [f.result(timeout=10) for f in futures] == [0, 2, 4, 6]
                assert client.reconnects == 0
            finally:
                client.close()


class TestExactResume:
    def test_replay_is_exactly_the_unseen_suffix(self, gateway):
        """Resume with last_seq=k replays seqs {k+1..n} — nothing more,
        nothing less, no duplicates."""
        first = MessageClient(gateway.host, gateway.port)
        first.send(protocol.hello("alice"))
        welcome = first.recv(timeout=5)
        assert welcome["type"] == "welcome"

        for cid in range(10):
            first.send(protocol.submit(cid, pack_apply_message(double, (cid,), {})))
        seqs = []
        deadline = time.time() + 15
        while len(seqs) < 10 and time.time() < deadline:
            message = first.recv(timeout=deadline - time.time())
            if message and message.get("type") == "result":
                seqs.append(message["seq"])
        assert sorted(seqs) == list(range(1, 11))
        first.close()  # abrupt: no goodbye, session stays resumable

        second = MessageClient(gateway.host, gateway.port)
        second.send(
            protocol.hello(
                "alice",
                session=welcome["session"],
                session_token=welcome["session_token"],
                last_seq=6,
            )
        )
        replayed = []
        deadline = time.time() + 10
        while time.time() < deadline:
            message = second.recv(timeout=0.5)
            if message is None:
                break  # the replay train has drained
            if message.get("type") == "welcome":
                assert message["resumed"] is True
            elif message.get("type") == "result":
                replayed.append(message["seq"])
        second.close()
        assert replayed == [7, 8, 9, 10]


class TestStalledReader:
    def test_stalled_tenant_does_not_block_others(self, gateway):
        """A tenant that stops reading must not stall result delivery for
        healthy tenants (the dedicated sender thread's whole purpose)."""
        sloth = StalledReader(gateway.host, gateway.port, tenant="sloth")
        try:
            for cid in range(20):
                sloth.submit(cid, pack_apply_message(double, (cid,), {}))
            with ServiceClient(gateway.host, gateway.port, tenant="alice") as client:
                futures = [client.submit(double, i) for i in range(10)]
                assert [f.result(timeout=15) for f in futures] == [
                    i * 2 for i in range(10)
                ]
            # The gateway finished sloth's work server-side even though the
            # results can't drain to it.
            assert wait_for(
                lambda: gateway.stats().get("sloth", {}).get("completed") == 20,
                timeout=15,
            )
        finally:
            sloth.close()


class TestGatewayRestart:
    def test_restart_fails_tcp_futures_cleanly(self, gw_dfk):
        """A gateway restart loses sessions: the TCP client's resume is
        rejected and outstanding futures fail with ServiceError — a clean,
        prompt signal, never a silent hang."""
        with GatewayHarness(gw_dfk) as harness:
            client = ServiceClient(
                *harness.address, tenant="alice",
                reconnect_interval=0.05, max_reconnect_attempts=30,
                connect_timeout=2.0,
            )
            try:
                warm = client.submit(double, 1)
                assert warm.result(timeout=10) == 2
                # Slow enough that nothing completes before the restart.
                futures = [client.submit(slow_double, i, 0.5) for i in range(8)]
                harness.restart()
                for future in futures:
                    with pytest.raises(ServiceError):
                        future.result(timeout=30)
            finally:
                client.close()

    def test_close_interrupts_reconnect_backoff(self, gw_dfk):
        """Regression: close() used to wait out time.sleep(reconnect_interval)
        inside the reconnect loop. With a long interval, closing a
        reconnecting client must still return promptly and reap its receiver
        thread."""
        harness = GatewayHarness(gw_dfk).start()
        client = ServiceClient(
            *harness.address, tenant="alice",
            reconnect_interval=60.0,  # pathological on purpose
            max_reconnect_attempts=5,
            connect_timeout=0.2,
        )
        try:
            assert client.submit(double, 2).result(timeout=10) == 4
            harness.kill()  # connection dies; reconnect loop starts failing
            # Let the receiver enter the reconnect backoff sleep.
            assert wait_for(lambda: not client._transport.connected, timeout=5)
            time.sleep(0.5)
            started = time.monotonic()
            client.close()
            elapsed = time.monotonic() - started
            assert elapsed < 5.0, f"close() took {elapsed:.1f}s (stuck in backoff)"
            assert wait_for(lambda: not client._receiver.is_alive(), timeout=5)
        finally:
            harness.close()
