"""Tests for the multi-tenant workflow gateway service."""

import time

import pytest

import repro
from repro import Config
from repro.auth import NativeAppAuthClient, TokenStore
from repro.comms.client import MessageClient
from repro.errors import AuthenticationError, ServiceError
from repro.executors import ThreadPoolExecutor
from repro.serialize import deserialize, pack_apply_message
from repro.service import ServiceClient, WorkflowGateway
from repro.service import protocol


def double(x):
    return x * 2


def fail_with(message):
    raise ValueError(message)


def slow_double(x, duration=0.05):
    time.sleep(duration)
    return x * 2


@pytest.fixture
def gw_dfk(run_dir):
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=4)],
        run_dir=run_dir,
        strategy="none",
    )
    dfk = repro.load(cfg)
    yield dfk
    repro.clear()


@pytest.fixture
def gateway(gw_dfk):
    with WorkflowGateway(gw_dfk, session_ttl_s=5.0) as gw:
        yield gw


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class RawTenant:
    """A bare-protocol client for deterministic server-side assertions."""

    def __init__(self, gateway, tenant, token=None, **hello_kwargs):
        self.transport = MessageClient(gateway.host, gateway.port)
        self.transport.send(protocol.hello(tenant, token, **hello_kwargs))
        self.welcome = self.recv()

    def recv(self, timeout=5.0):
        return self.transport.recv(timeout=timeout)

    def recv_type(self, mtype, timeout=5.0):
        """Receive until a frame of the given type arrives (skipping others)."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            message = self.transport.recv(timeout=deadline - time.time())
            if message is not None and message.get("type") == mtype:
                return message
        raise AssertionError(f"no {mtype!r} frame within {timeout}s")

    def submit(self, cid, func, *args, spec=None):
        self.transport.send(
            protocol.submit(cid, pack_apply_message(func, args, {}), spec)
        )

    def close(self):
        self.transport.close()


class TestRoundtrip:
    def test_submit_result_roundtrip(self, gateway):
        with ServiceClient(gateway.host, gateway.port, tenant="alice") as client:
            futures = [client.submit(double, i) for i in range(10)]
            assert [f.result(timeout=10) for f in futures] == [i * 2 for i in range(10)]

    def test_remote_exception_surfaces(self, gateway):
        with ServiceClient(gateway.host, gateway.port, tenant="alice") as client:
            future = client.submit(fail_with, "boom")
            with pytest.raises(ValueError, match="boom"):
                future.result(timeout=10)

    def test_future_mirrors_app_future_shape(self, gateway):
        with ServiceClient(gateway.host, gateway.port, tenant="alice") as client:
            future = client.submit(double, 21)
            assert isinstance(future.tid, int)
            assert future.result(timeout=10) == 42
            assert future.done()

    def test_resource_spec_priority_accepted(self, gateway):
        with ServiceClient(gateway.host, gateway.port, tenant="alice") as client:
            future = client.submit(double, 3, priority=5)
            assert future.result(timeout=10) == 6

    def test_many_concurrent_tenants(self, gateway):
        clients = [
            ServiceClient(gateway.host, gateway.port, tenant=f"t{i}") for i in range(4)
        ]
        try:
            futures = {c.tenant: [c.submit(double, i) for i in range(5)] for c in clients}
            for tenant, futs in futures.items():
                assert [f.result(timeout=10) for f in futs] == [0, 2, 4, 6, 8]
            stats = gateway.stats()
            for c in clients:
                assert stats[c.tenant]["completed"] == 5
        finally:
            for c in clients:
                c.close()

    def test_monitoring_rows_carry_tenant_tag(self, run_dir):
        from repro.monitoring.hub import MonitoringHub
        from repro.monitoring.messages import MessageType

        hub = MonitoringHub(batch_flush_interval=0.01)
        cfg = Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
            run_dir=run_dir,
            strategy="none",
            monitoring=hub,
        )
        dfk = repro.load(cfg)
        try:
            with WorkflowGateway(dfk) as gw:
                with ServiceClient(gw.host, gw.port, tenant="acme") as client:
                    assert client.submit(double, 1).result(timeout=10) == 2
            assert wait_for(
                lambda: any(
                    row.get("tag") == "acme"
                    for row in hub.store.query(MessageType.TASK_STATE)
                )
            ), "no TASK_STATE row carried the tenant tag"
        finally:
            repro.clear()


class TestAuth:
    def test_token_required_and_validated(self, gw_dfk, tmp_path):
        store = TokenStore(path=str(tmp_path / "tokens.json"))
        store.login([protocol.token_scope("alice")])
        token = store.get_token(protocol.token_scope("alice"))
        with WorkflowGateway(gw_dfk, token_store=store) as gw:
            # Correct token: accepted.
            with ServiceClient(gw.host, gw.port, tenant="alice", token=token) as client:
                assert client.submit(double, 2).result(timeout=10) == 4
            # Wrong token: rejected at handshake.
            with pytest.raises(AuthenticationError):
                ServiceClient(gw.host, gw.port, tenant="alice", token="forged")
            # Missing token: rejected too (the scope demands one).
            with pytest.raises(AuthenticationError):
                ServiceClient(gw.host, gw.port, tenant="alice")

    def test_unscoped_tenant_allowed_without_token(self, gw_dfk, tmp_path):
        store = TokenStore(path=str(tmp_path / "tokens.json"))
        store.login([protocol.token_scope("alice")])
        with WorkflowGateway(gw_dfk, token_store=store) as gw:
            # No token entry for 'guest': open access, like an unguarded host.
            with ServiceClient(gw.host, gw.port, tenant="guest") as client:
                assert client.submit(double, 5).result(timeout=10) == 10

    def test_expired_token_rejected_until_refreshed(self, gw_dfk, tmp_path):
        store = TokenStore(path=str(tmp_path / "tokens.json"))
        scope = protocol.token_scope("alice")
        expired_client = NativeAppAuthClient(token_lifetime_s=-1)
        expired_client.start_flow([scope])
        store.store_tokens(expired_client.complete_flow("ok"))
        stale = str(store._tokens[scope]["access_token"])
        with WorkflowGateway(gw_dfk, token_store=store) as gw:
            with pytest.raises(AuthenticationError):
                ServiceClient(gw.host, gw.port, tenant="alice", token=stale)
            fresh = store.refresh(scope)
            with ServiceClient(gw.host, gw.port, tenant="alice", token=fresh) as client:
                assert client.submit(double, 4).result(timeout=10) == 8


class TestBackpressure:
    def test_busy_reply_past_tenant_cap(self, gw_dfk):
        """The server answers over-cap submits with busy, not silent queueing."""
        with WorkflowGateway(gw_dfk, max_inflight_per_tenant=2, window=1) as gw:
            raw = RawTenant(gw, "alice")
            try:
                assert raw.welcome["type"] == "welcome"
                assert raw.welcome["max_inflight"] == 2
                for cid in range(2):
                    raw.submit(cid, slow_double, cid)
                    assert raw.recv_type("accepted")["client_task_id"] == cid
                raw.submit(2, slow_double, 2)
                busy = raw.recv_type("busy")
                assert busy["client_task_id"] == 2 and busy["cap"] == 2
                # Capacity frees as results land; the resubmit then succeeds.
                raw.recv_type("result", timeout=10)
                raw.submit(2, slow_double, 2)
                assert raw.recv_type("accepted")["client_task_id"] == 2
            finally:
                raw.close()

    def test_service_client_self_paces_through_cap(self, gw_dfk):
        with WorkflowGateway(gw_dfk, max_inflight_per_tenant=3) as gw:
            with ServiceClient(gw.host, gw.port, tenant="alice") as client:
                assert client.max_inflight == 3
                futures = [client.submit(slow_double, i) for i in range(12)]
                assert [f.result(timeout=30) for f in futures] == [i * 2 for i in range(12)]

    def test_duplicate_submit_deduplicated(self, gateway):
        """A resent client_task_id must not run twice."""
        raw = RawTenant(gateway, "alice")
        try:
            raw.submit(0, slow_double, 7, 0.3)
            assert raw.recv_type("accepted")["client_task_id"] == 0
            raw.submit(0, slow_double, 7, 0.3)  # duplicate while queued/running
            assert raw.recv_type("accepted")["client_task_id"] == 0
            result = raw.recv_type("result", timeout=10)
            assert deserialize(result["buffer"]) == 14
            # Duplicate of a *finished* task: its result is replayed.
            raw.submit(0, double, 7)
            replay = raw.recv_type("result")
            assert replay["client_task_id"] == 0
            assert deserialize(replay["buffer"]) == 14
            assert gateway.stats()["alice"]["completed"] == 1
        finally:
            raw.close()


class TestSessions:
    def test_resume_replays_results_completed_while_away(self, gateway):
        raw = RawTenant(gateway, "alice")
        session = raw.welcome["session"]
        session_token = raw.welcome["session_token"]
        for cid in range(3):
            raw.submit(cid, double, cid)
        # Sever without goodbye: results complete with nobody connected.
        raw.close()
        assert wait_for(lambda: gateway.stats()["alice"]["completed"] == 3)
        resumed = RawTenant(
            gateway, "alice", session=session, session_token=session_token, last_seq=0
        )
        try:
            assert resumed.welcome["type"] == "welcome" and resumed.welcome["resumed"]
            replayed = sorted(
                deserialize(resumed.recv_type("result")["buffer"]) for _ in range(3)
            )
            assert replayed == [0, 2, 4]
        finally:
            resumed.close()

    def test_resume_with_wrong_session_token_rejected(self, gateway):
        raw = RawTenant(gateway, "alice")
        session = raw.welcome["session"]
        raw.close()
        stranger = RawTenant(
            gateway, "alice", session=session, session_token="forged", last_seq=0
        )
        try:
            assert stranger.welcome["type"] == "auth_error"
        finally:
            stranger.close()

    def test_disconnected_session_evicted_after_ttl(self, gw_dfk):
        with WorkflowGateway(gw_dfk, session_ttl_s=0.2) as gw:
            raw = RawTenant(gw, "alice")
            session = raw.welcome["session"]
            session_token = raw.welcome["session_token"]
            raw.close()
            assert wait_for(lambda: gw.session_count() == 0, timeout=5)
            late = RawTenant(
                gw, "alice", session=session, session_token=session_token, last_seq=0
            )
            try:
                assert late.welcome["type"] == "auth_error"
                assert "session" in late.welcome["reason"]
            finally:
                late.close()

    def test_second_hello_on_same_connection_releases_old_session(self, gw_dfk):
        """A fresh hello abandons the connection's previous session, which
        must become TTL-sweepable instead of leaking forever."""
        with WorkflowGateway(gw_dfk, session_ttl_s=0.2) as gw:
            raw = RawTenant(gw, "alice")
            first_session = raw.welcome["session"]
            raw.transport.send(protocol.hello("alice"))
            second = raw.recv_type("welcome")
            assert second["session"] != first_session
            # The orphaned session is swept; the new one survives.
            assert wait_for(lambda: gw.session_count() == 1, timeout=5)
            raw.submit(0, double, 5)
            result = raw.recv_type("result", timeout=10)
            assert deserialize(result["buffer"]) == 10
            raw.close()

    def test_goodbye_releases_session_immediately(self, gateway):
        raw = RawTenant(gateway, "alice")
        assert gateway.session_count() == 1
        raw.transport.send(protocol.goodbye())
        assert wait_for(lambda: gateway.session_count() == 0)
        raw.close()

    def test_service_client_reconnects_and_recovers(self, gateway):
        client = ServiceClient(
            gateway.host, gateway.port, tenant="alice", reconnect_interval=0.05
        )
        try:
            futures = [client.submit(slow_double, i) for i in range(12)]
            time.sleep(0.1)  # some done, some in flight
            client.drop_connection()
            assert [f.result(timeout=30) for f in futures] == [i * 2 for i in range(12)]
            assert client.reconnects >= 1
        finally:
            client.close()


class TestFairShare:
    def test_weighted_tenants_complete_in_weight_ratio(self, gw_dfk):
        with WorkflowGateway(
            gw_dfk,
            window=4,
            max_inflight_per_tenant=300,
            tenant_weights={"big": 8, "small": 1},
        ) as gw:
            big = ServiceClient(gw.host, gw.port, tenant="big")
            small = ServiceClient(gw.host, gw.port, tenant="small")
            try:
                n = 90
                futures = [big.submit(slow_double, i, 0.004) for i in range(n)]
                futures += [small.submit(slow_double, i, 0.004) for i in range(n)]
                assert wait_for(
                    lambda: sum(s["completed"] for s in gw.stats().values()) >= n,
                    timeout=60,
                )
                stats = gw.stats()
                ratio = stats["big"]["completed"] / max(stats["small"]["completed"], 1)
                assert 4 <= ratio <= 16, f"8:1 weights gave completion ratio {ratio:.1f}"
                for f in futures:
                    f.result(timeout=60)
            finally:
                big.close()
                small.close()

    def test_hello_weight_ignored_when_pinned(self, gw_dfk):
        with WorkflowGateway(gw_dfk, tenant_weights={"alice": 2}) as gw:
            raw = RawTenant(gw, "alice", weight=99)
            try:
                assert raw.welcome["weight"] == 2
            finally:
                raw.close()

    def test_hello_weight_capped_for_unpinned_tenants(self, gw_dfk):
        """An unpinned tenant cannot self-assign an unbounded fair share."""
        with WorkflowGateway(gw_dfk, max_client_weight=16) as gw:
            greedy = RawTenant(gw, "greedy", weight=10**9)
            modest = RawTenant(gw, "modest", weight=4)
            try:
                assert greedy.welcome["weight"] == 16
                assert modest.welcome["weight"] == 4
            finally:
                greedy.close()
                modest.close()


class TestProtocolErrors:
    def test_submit_without_hello_rejected(self, gateway):
        transport = MessageClient(gateway.host, gateway.port)
        try:
            transport.send(protocol.submit(0, pack_apply_message(double, (1,), {})))
            reply = transport.recv(timeout=5)
            assert reply["type"] == "error"
            assert "hello" in reply["reason"]
        finally:
            transport.close()

    def test_bad_resource_spec_reported(self, gateway):
        raw = RawTenant(gateway, "alice")
        try:
            raw.submit(0, double, 1, spec={"coers": 2})
            reply = raw.recv_type("error")
            assert reply["client_task_id"] == 0
        finally:
            raw.close()

    def test_client_surfaces_gateway_error(self, gateway):
        with ServiceClient(gateway.host, gateway.port, tenant="alice") as client:
            future = client.submit(double, 1, resource_spec=None)
            assert future.result(timeout=10) == 2
            # Closed client refuses further submissions.
        with pytest.raises(ServiceError):
            client.submit(double, 2)
