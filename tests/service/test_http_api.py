"""Endpoint-level tests for the HTTP/SSE edge (`repro.service.http_edge`).

These drive the edge with plain :mod:`http.client` requests — deliberately
not the SDK — so the wire surface (status codes, headers, JSON shapes, SSE
framing) is pinned down independently of the client library.
"""

import base64
import http.client
import json
import time

import pytest

import repro
from repro import Config
from repro.auth import TokenStore
from repro.executors import ThreadPoolExecutor
from repro.serialize import deserialize, pack_apply_message
from repro.service import HttpEdge, WorkflowGateway, protocol


def double(x):
    return x * 2


def slow_double(x, duration=0.3):
    time.sleep(duration)
    return x * 2


def fail_with(message):
    raise ValueError(message)


@pytest.fixture
def gw_dfk(run_dir):
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=4)],
        run_dir=run_dir,
        strategy="none",
    )
    dfk = repro.load(cfg)
    yield dfk
    repro.clear()


@pytest.fixture
def edge(gw_dfk):
    with WorkflowGateway(gw_dfk, session_ttl_s=10.0) as gw:
        server = HttpEdge(gw, registry={"double": double, "slow": slow_double})
        server.start()
        yield server
        server.stop()


def request(edge, method, path, body=None, headers=None, tenant="alice"):
    """One HTTP exchange; returns (status, headers-dict, parsed-JSON body)."""
    conn = http.client.HTTPConnection(edge.host, edge.port, timeout=15)
    all_headers = {"X-Repro-Tenant": tenant} if tenant else {}
    all_headers.update(headers or {})
    payload = json.dumps(body) if body is not None else None
    if payload is not None:
        all_headers["Content-Type"] = "application/json"
    conn.request(method, path, payload, all_headers)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return (
        response.status,
        {k.lower(): v for k, v in response.getheaders()},
        json.loads(data) if data else {},
    )


def open_session(edge, tenant="alice", token=None):
    headers = {"Authorization": f"Bearer {token}"} if token else {}
    status, _h, body = request(edge, "POST", "/v1/session", {}, headers, tenant)
    assert status == 201, body
    return body


def session_headers(session):
    return {
        "X-Repro-Session": session["session"],
        "X-Repro-Session-Token": session["session_token"],
    }


def read_sse_events(edge, session, tenant="alice", last_event_id=0, max_events=100,
                    timeout=15.0, stop_after=None):
    """Consume the SSE stream until ``stop_after`` events (or timeout)."""
    conn = http.client.HTTPConnection(edge.host, edge.port, timeout=timeout)
    headers = {"X-Repro-Tenant": tenant, "Last-Event-ID": str(last_event_id)}
    headers.update(session_headers(session))
    conn.request("GET", "/v1/stream", None, headers)
    response = conn.getresponse()
    assert response.status == 200, response.read()
    events = []
    current = {}
    deadline = time.time() + timeout
    while len(events) < max_events and time.time() < deadline:
        line = response.fp.readline().decode("utf-8").rstrip("\r\n")
        if line == "":
            if current:
                events.append(current)
                current = {}
                if stop_after is not None and len(events) >= stop_after:
                    break
            continue
        if line.startswith(":"):
            continue
        name, _sep, value = line.partition(":")
        current[name] = value.lstrip()
    conn.close()
    return events


class TestBasics:
    def test_healthz_needs_no_auth(self, edge):
        status, _h, body = request(edge, "GET", "/v1/healthz", tenant=None)
        assert status == 200 and body["status"] == "ok"

    def test_missing_tenant_header_is_400(self, edge):
        status, _h, body = request(edge, "POST", "/v1/session", {}, tenant=None)
        assert status == 400
        assert "X-Repro-Tenant" in body["error"]

    def test_unknown_route_is_404(self, edge):
        status, _h, _b = request(edge, "GET", "/v1/nope")
        assert status == 404

    def test_malformed_json_body_is_400(self, edge):
        conn = http.client.HTTPConnection(edge.host, edge.port, timeout=10)
        conn.request("POST", "/v1/session", "{not json",
                     {"X-Repro-Tenant": "alice", "Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        conn.close()

    @pytest.mark.parametrize("raw_length", ["nope", "-1", "1e3"])
    def test_bad_content_length_is_clean_400(self, edge, raw_length):
        """Regression: a malformed or negative Content-Length used to raise
        an uncaught ValueError that killed the connection with no reply."""
        import socket

        with socket.create_connection((edge.host, edge.port), timeout=10) as sock:
            sock.sendall(
                (
                    "POST /v1/session HTTP/1.1\r\n"
                    "Host: test\r\n"
                    "X-Repro-Tenant: alice\r\n"
                    f"Content-Length: {raw_length}\r\n\r\n"
                ).encode("latin-1")
            )
            reply = sock.recv(65536).decode("latin-1", "replace")
        assert reply.startswith("HTTP/1.1 400 "), reply

    def test_session_open_and_release(self, edge):
        session = open_session(edge)
        assert session["session"] and session["session_token"]
        assert session["resumed"] is False
        status, _h, body = request(
            edge, "DELETE", f"/v1/session/{session['session']}",
            headers=session_headers(session),
        )
        assert status == 200 and body["released"] == session["session"]


class TestSubmission:
    def test_registered_fn_json_roundtrip(self, edge):
        session = open_session(edge)
        status, _h, accepted = request(
            edge, "POST", "/v1/tasks",
            {"fn": "double", "args": [21]}, session_headers(session),
        )
        assert status == 202
        task_id = accepted["task_id"]
        deadline = time.time() + 15
        while time.time() < deadline:
            status, _h, body = request(edge, "GET", f"/v1/tasks/{task_id}",
                                       headers=session_headers(session))
            assert status == 200
            if body["status"] == "done":
                assert body["success"] is True
                assert body["value"] == 42
                return
            time.sleep(0.05)
        pytest.fail("task never finished")

    def test_payload_b64_pickled_roundtrip(self, edge):
        session = open_session(edge)
        buffer = pack_apply_message(double, (8,), {})
        status, _h, accepted = request(
            edge, "POST", "/v1/tasks",
            {"payload_b64": base64.b64encode(buffer).decode()},
            session_headers(session),
        )
        assert status == 202
        events = read_sse_events(edge, session, stop_after=1)
        assert events[0]["event"] == "result"
        data = json.loads(events[0]["data"])
        assert data["task_id"] == accepted["task_id"]
        assert deserialize(base64.b64decode(data["payload_b64"])) == 16

    def test_submit_without_session_auto_creates_one(self, edge):
        status, _h, body = request(edge, "POST", "/v1/tasks",
                                   {"fn": "double", "args": [1]})
        assert status == 202
        # The implicit session's token comes back so the caller can stream.
        assert body["session"] and body["session_token"]

    def test_unregistered_fn_is_404(self, edge):
        session = open_session(edge)
        status, _h, body = request(edge, "POST", "/v1/tasks",
                                   {"fn": "os.system", "args": ["true"]},
                                   session_headers(session))
        assert status == 404
        assert "not registered" in body["error"]

    def test_fn_and_payload_together_is_400(self, edge):
        session = open_session(edge)
        status, _h, _b = request(
            edge, "POST", "/v1/tasks",
            {"fn": "double", "payload_b64": "aGk=", "args": [1]},
            session_headers(session),
        )
        assert status == 400

    def test_huge_client_task_id_accepted_in_constant_time(self, edge):
        """Regression: an explicit client_task_id near the top of the allowed
        range must not spin the event loop catching the auto-assign counter
        up one step at a time (it used to iterate `requested` times)."""
        from repro.service.http_edge import MAX_CLIENT_TASK_ID

        session = open_session(edge)
        big = MAX_CLIENT_TASK_ID - 1
        start = time.monotonic()
        status, _h, accepted = request(
            edge, "POST", "/v1/tasks",
            {"fn": "double", "args": [3], "client_task_id": big},
            session_headers(session),
        )
        elapsed = time.monotonic() - start
        assert status == 202
        assert accepted["client_task_id"] == big
        assert elapsed < 5.0  # O(1) bookkeeping, not O(requested) spinning
        # The auto-assign counter jumped past the explicit id: a follow-up
        # implicit submit must not collide with it.
        status, _h, follow = request(
            edge, "POST", "/v1/tasks",
            {"fn": "double", "args": [4]}, session_headers(session),
        )
        assert status == 202
        assert follow["client_task_id"] == big + 1

    def test_out_of_range_client_task_id_is_400(self, edge):
        from repro.service.http_edge import MAX_CLIENT_TASK_ID

        session = open_session(edge)
        for bad in (-1, MAX_CLIENT_TASK_ID + 1, 10**18):
            status, _h, body = request(
                edge, "POST", "/v1/tasks",
                {"fn": "double", "args": [1], "client_task_id": bad},
                session_headers(session),
            )
            assert status == 400, bad
            assert "client_task_id" in body["error"]

    def test_failure_surfaces_error_type_and_message(self, edge):
        session = open_session(edge)
        buffer = pack_apply_message(fail_with, ("kaput",), {})
        request(edge, "POST", "/v1/tasks",
                {"payload_b64": base64.b64encode(buffer).decode()},
                session_headers(session))
        events = read_sse_events(edge, session, stop_after=1)
        assert events[0]["event"] == "error"
        data = json.loads(events[0]["data"])
        assert data["success"] is False
        assert data["error_type"] == "ValueError"
        assert data["error_message"] == "kaput"
        exc = deserialize(base64.b64decode(data["payload_b64"]))
        assert isinstance(exc, ValueError)


class TestAuth:
    @pytest.fixture
    def secured(self, gw_dfk, tmp_path):
        store = TokenStore(path=str(tmp_path / "tokens.json"))
        token = store.refresh(protocol.token_scope("alice"))
        with WorkflowGateway(gw_dfk, token_store=store, session_ttl_s=10.0) as gw:
            server = HttpEdge(gw)
            server.start()
            yield server, token
            server.stop()

    def test_valid_bearer_token_accepted(self, secured):
        edge, token = secured
        session = open_session(edge, token=token)
        assert session["session"]

    def test_missing_token_is_401(self, secured):
        edge, _token = secured
        status, _h, body = request(edge, "POST", "/v1/session", {})
        assert status == 401
        assert "token" in body["error"]

    def test_wrong_token_is_401(self, secured):
        edge, _token = secured
        status, _h, _b = request(edge, "POST", "/v1/session", {},
                                 {"Authorization": "Bearer forged"})
        assert status == 401

    def test_unknown_tenant_without_entry_is_open(self, secured):
        # Mirrors TokenStore semantics: scopes with no stored entry accept
        # tokenless hellos (open unless an operator provisioned a token).
        edge, _token = secured
        session = open_session(edge, tenant="nobody")
        assert session["session"]


class TestBackpressureAndCancel:
    @pytest.fixture
    def tight_edge(self, gw_dfk):
        with WorkflowGateway(gw_dfk, max_inflight_per_tenant=2,
                             session_ttl_s=10.0) as gw:
            server = HttpEdge(gw, registry={"slow": slow_double})
            server.start()
            yield server
            server.stop()

    def test_429_with_retry_after(self, tight_edge):
        session = open_session(tight_edge)
        replies = []
        for i in range(4):
            replies.append(request(
                tight_edge, "POST", "/v1/tasks",
                {"fn": "slow", "args": [i], "kwargs": {"duration": 1.0}},
                session_headers(session),
            ))
        busy = [(s, h, b) for s, h, b in replies if s == 429]
        assert busy, "expected at least one 429 beyond the in-flight cap of 2"
        status, headers, body = busy[0]
        assert headers["retry-after"] == "1"
        assert body["error"] == "busy"
        assert body["retry_after_s"] > 0
        assert body["cap"] == 2

    def test_cancel_queued_task(self, gw_dfk):
        # window=1 + a long-running blocker keeps the victim queued.
        with WorkflowGateway(gw_dfk, window=1, session_ttl_s=10.0) as gw:
            edge = HttpEdge(gw, registry={"slow": slow_double})
            edge.start()
            try:
                session = open_session(edge)
                request(edge, "POST", "/v1/tasks",
                        {"fn": "slow", "args": [1], "kwargs": {"duration": 1.5}},
                        session_headers(session))
                _s, _h, victim = request(edge, "POST", "/v1/tasks",
                                         {"fn": "slow", "args": [2]},
                                         session_headers(session))
                status, _h, verdict = request(
                    edge, "POST", f"/v1/tasks/{victim['task_id']}/cancel",
                    {}, session_headers(session),
                )
                assert status == 200
                assert verdict["status"] == "cancelled"
                # The cancellation is delivered as a failed result carrying
                # TaskCancelledError.
                events = read_sse_events(edge, session, stop_after=2)
                cancelled = [e for e in events
                             if json.loads(e["data"])["task_id"] == victim["task_id"]]
                assert cancelled and cancelled[0]["event"] == "error"
                data = json.loads(cancelled[0]["data"])
                assert data["error_type"] == "TaskCancelledError"
            finally:
                edge.stop()

    def test_cancel_unknown_task_is_404(self, edge):
        session = open_session(edge)
        status, _h, body = request(
            edge, "POST", f"/v1/tasks/{session['session']}:999/cancel",
            {}, session_headers(session),
        )
        assert status == 404
        assert body["status"] == "unknown"


class TestStats:
    def test_tenant_stats_reflect_completions(self, edge):
        session = open_session(edge)
        for i in range(3):
            request(edge, "POST", "/v1/tasks", {"fn": "double", "args": [i]},
                    session_headers(session))
        read_sse_events(edge, session, stop_after=3)
        status, _h, body = request(edge, "GET", "/v1/tenants/me/stats")
        assert status == 200
        assert body["tenant"] == "alice"
        assert body["completed"] == 3


class TestStream:
    def test_sse_ids_are_session_seqs(self, edge):
        session = open_session(edge)
        for i in range(5):
            request(edge, "POST", "/v1/tasks", {"fn": "double", "args": [i]},
                    session_headers(session))
        events = read_sse_events(edge, session, stop_after=5)
        assert [int(e["id"]) for e in events] == [1, 2, 3, 4, 5]
        values = sorted(json.loads(e["data"])["value"] for e in events)
        assert values == [0, 2, 4, 6, 8]

    def test_last_event_id_replays_exactly_the_unseen_suffix(self, edge):
        session = open_session(edge)
        for i in range(8):
            request(edge, "POST", "/v1/tasks", {"fn": "double", "args": [i]},
                    session_headers(session))
        first = read_sse_events(edge, session, stop_after=8)
        assert [int(e["id"]) for e in first] == list(range(1, 9))
        # Reconnect claiming we saw through seq 5: replay must be 6,7,8 —
        # no duplicates, nothing missing.
        replay = read_sse_events(edge, session, last_event_id=5, stop_after=3,
                                 timeout=5)
        assert [int(e["id"]) for e in replay] == [6, 7, 8]

    def test_unknown_session_is_410(self, edge):
        conn = http.client.HTTPConnection(edge.host, edge.port, timeout=10)
        conn.request("GET", "/v1/stream", None, {
            "X-Repro-Tenant": "alice",
            "X-Repro-Session": "sess-doesnotexist",
            "X-Repro-Session-Token": "bogus",
        })
        response = conn.getresponse()
        assert response.status == 410
        conn.close()

    def test_stream_without_session_is_400(self, edge):
        status, _h, _b = request(edge, "GET", "/v1/stream")
        assert status == 400
