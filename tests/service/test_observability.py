"""Service-layer observability: /metrics, healthz readiness, and e2e traces.

The tentpole's acceptance surface: a Prometheus-valid ``GET /metrics`` on
the HTTP edge (and the equivalent ``metrics`` admin command on TCP), a
healthz probe whose status code tracks shard readiness, and — the full
pipeline test — a task submitted through the HTTP edge producing a
complete, monotone span waterfall queryable by trace id and renderable by
``tools/trace_report.py``.
"""

import asyncio
import http.client
import os
import subprocess
import sys
import time

import pytest

import repro
from repro import Config
from repro.executors import HighThroughputExecutor, ThreadPoolExecutor
from repro.monitoring.db import SQLiteStore
from repro.monitoring.hub import MonitoringHub
from repro.monitoring.report import span_timeline
from repro.observability.trace import SPAN_EVENTS
from repro.service import (
    AsyncServiceClient,
    HttpEdge,
    ServiceClient,
    WorkflowGateway,
)

from test_http_api import open_session, request, session_headers

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def double(x):
    return x * 2


def wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def gw_dfk(run_dir):
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=4)],
        run_dir=run_dir,
        strategy="none",
    )
    dfk = repro.load(cfg)
    yield dfk
    repro.clear()


@pytest.fixture
def gateway(gw_dfk):
    with WorkflowGateway(gw_dfk, session_ttl_s=10.0) as gw:
        yield gw


@pytest.fixture
def edge(gateway):
    server = HttpEdge(gateway, registry={"double": double})
    server.start()
    yield server
    server.stop()


def scrape(edge):
    """GET /metrics raw (it is text/plain, not JSON, so not request())."""
    conn = http.client.HTTPConnection(edge.host, edge.port, timeout=15)
    conn.request("GET", "/metrics", None, {})
    response = conn.getresponse()
    body = response.read().decode("utf-8")
    content_type = response.getheader("Content-Type")
    conn.close()
    return response.status, content_type, body


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_and_covers_the_stack(
            self, edge, prom_validator):
        session = open_session(edge)
        for i in range(4):
            status, _h, _b = request(edge, "POST", "/v1/tasks",
                                     {"fn": "double", "args": [i]},
                                     session_headers(session))
            assert status == 202
        assert wait_for(lambda: "repro_gateway_tasks_delivered_total 4"
                        in scrape(edge)[2])
        status, content_type, text = scrape(edge)
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        prom_validator(text)
        # The catalog spans every layer the issue names.
        for family in (
            "repro_gateway_tasks_delivered_total",       # delivery
            "repro_gateway_sessions",                    # session gauge
            "repro_gateway_admission_wait_seconds",      # queue wait
            "repro_gateway_e2e_latency_seconds",         # per-tenant e2e
            "repro_dfk_tasks_submitted_total",           # submit
            "repro_dfk_tasks_completed_total",           # completion
            "repro_dfk_task_duration_seconds",           # execution latency
            "repro_dfk_dispatch_queue_depth",            # queue depth
        ):
            assert f"# TYPE {family}" in text, f"{family} missing from scrape"
        # Per-tenant histograms label by tenant, le rendered last.
        assert 'repro_gateway_e2e_latency_seconds_bucket{tenant="alice",le=' in text
        assert 'repro_gateway_e2e_latency_seconds_count{tenant="alice"} 4' in text
        assert 'repro_gateway_admission_wait_seconds_count{tenant="alice"} 4' in text

    def test_scrape_needs_no_auth(self, edge):
        status, _ct, _text = scrape(edge)
        assert status == 200

    def test_tcp_metrics_command_matches_scrape(self, gateway, edge,
                                                prom_validator):
        with ServiceClient(gateway.host, gateway.port, tenant="bob") as client:
            assert client.submit(double, 5).result(timeout=15) == 10
            text = client.metrics()
        prom_validator(text)
        assert "repro_gateway_tasks_delivered_total" in text
        assert 'repro_gateway_e2e_latency_seconds_count{tenant="bob"} 1' in text

    def test_shard_stats_carry_metrics_summary(self, gateway):
        with ServiceClient(gateway.host, gateway.port, tenant="carol") as client:
            assert client.submit(double, 2).result(timeout=15) == 4
        rows = gateway.shard_stats()
        assert len(rows) == 1
        summary = rows[0]["metrics"]
        assert summary["repro_dfk_tasks_submitted_total"] >= 1
        assert summary["repro_dfk_tasks_completed_total"] >= 1

    def test_metrics_disabled_scrape_is_empty_but_200(self, run_dir,
                                                      prom_validator):
        cfg = Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
            run_dir=run_dir,
            strategy="none",
            metrics_enabled=False,
        )
        dfk = repro.load(cfg)
        try:
            with WorkflowGateway(dfk) as gw:
                server = HttpEdge(gw, registry={"double": double})
                server.start()
                try:
                    session = open_session(server)
                    request(server, "POST", "/v1/tasks",
                            {"fn": "double", "args": [1]},
                            session_headers(session))
                    status, _ct, text = scrape(server)
                    assert status == 200
                    prom_validator(text)  # the empty document is valid too
                    assert "repro_gateway" not in text
                    assert "repro_dfk" not in text
                finally:
                    server.stop()
        finally:
            repro.clear()


class TestHealthz:
    def test_ready_then_unavailable_after_shard_death(self, gateway, edge):
        status, _h, body = request(edge, "GET", "/v1/healthz", tenant=None)
        assert status == 200
        assert body["status"] == "ok"
        assert [s["alive"] for s in body["shards"]] == [True]

        gateway.kill_shard(0)
        status, _h, body = request(edge, "GET", "/v1/healthz", tenant=None)
        assert status == 503
        assert body["status"] == "unavailable"
        assert [s["alive"] for s in body["shards"]] == [False]


class TestTraceIdsOnClients:
    def test_tcp_future_carries_trace_id(self, gateway):
        with ServiceClient(gateway.host, gateway.port, tenant="alice") as client:
            future = client.submit(double, 21)
            assert future.result(timeout=15) == 42
            assert future.trace_id and future.trace_id.startswith("trace-")

    def test_http_submit_returns_trace_id(self, edge):
        session = open_session(edge)
        status, _h, accepted = request(edge, "POST", "/v1/tasks",
                                       {"fn": "double", "args": [3]},
                                       session_headers(session))
        assert status == 202
        assert accepted["trace_id"].startswith("trace-")

    def test_async_handle_carries_trace_id(self, edge):
        async def main():
            async with AsyncServiceClient(f"http://{edge.host}:{edge.port}",
                                          tenant="alice") as client:
                handle = await client.submit(double, 8)
                assert handle.trace_id and handle.trace_id.startswith("trace-")
                assert await handle.result(timeout=15) == 16
        asyncio.run(main())

    def test_trace_disabled_yields_no_trace_id(self, run_dir):
        cfg = Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
            run_dir=run_dir,
            strategy="none",
            trace_enabled=False,
        )
        dfk = repro.load(cfg)
        try:
            with WorkflowGateway(dfk) as gw:
                with ServiceClient(gw.host, gw.port, tenant="alice") as client:
                    future = client.submit(double, 1)
                    assert future.result(timeout=15) == 2
                    assert future.trace_id is None
        finally:
            repro.clear()


class TestEndToEndWaterfall:
    """A remote task through the HTTP edge leaves the full 9-hop row set."""

    def _run_traced_task(self, run_dir, db_path):
        store = SQLiteStore(db_path)
        hub = MonitoringHub(store=store)
        cfg = Config(
            executors=[HighThroughputExecutor(label="htex_obsv",
                                              workers_per_node=2,
                                              worker_mode="thread")],
            monitoring=hub,
            run_dir=run_dir,
            strategy="none",
        )
        dfk = repro.load(cfg)
        run_id = dfk.run_id
        trace_id = None
        try:
            with WorkflowGateway(dfk) as gw:
                server = HttpEdge(gw, registry={"double": double})
                server.start()
                try:
                    session = open_session(server)
                    status, _h, accepted = request(
                        server, "POST", "/v1/tasks",
                        {"fn": "double", "args": [21]},
                        session_headers(session))
                    assert status == 202
                    trace_id = accepted["trace_id"]
                    assert trace_id
                    task_id = accepted["task_id"]
                    assert wait_for(lambda: request(
                        server, "GET", f"/v1/tasks/{task_id}",
                        headers=session_headers(session))[2].get("status")
                        == "done")
                    # The delivered hop is flushed by the gateway after the
                    # result is committed to the session; give the hub's
                    # batched path a moment to drain it to SQLite.
                    assert wait_for(lambda: any(
                        e["event"] == "delivered"
                        for attempts in span_timeline(
                            store, run_id=run_id, trace_id=trace_id).values()
                        for events in attempts.values()
                        for e in events))
                finally:
                    server.stop()
        finally:
            repro.clear()  # closes the hub and the SQLite store
        return run_id, trace_id

    def test_http_task_yields_complete_monotone_waterfall(self, run_dir,
                                                          tmp_path):
        db_path = str(tmp_path / "monitoring.db")
        run_id, trace_id = self._run_traced_task(run_dir, db_path)

        store = SQLiteStore(db_path)
        try:
            traces = span_timeline(store, run_id=run_id, trace_id=trace_id)
        finally:
            store.close()
        assert set(traces) == {trace_id}
        attempts = traces[trace_id]
        assert set(attempts) == {1}  # one row set per attempt, no retries
        events = attempts[1]
        assert [e["event"] for e in events] == SPAN_EVENTS
        ts = [e["t"] for e in events]
        assert ts == sorted(ts), "waterfall is not monotone"

        # And the operator CLI renders it from the same database.
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "tools", "trace_report.py"),
             db_path, "--trace", trace_id, "--critical-path"],
            capture_output=True, text=True, timeout=60,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == 0, proc.stderr
        for hop in SPAN_EVENTS:
            assert hop in proc.stdout
        assert trace_id in proc.stdout
        assert "critical hop:" in proc.stdout
