"""Tests for the sharded gateway: ring routing, multi-shard execution,
shard death (re-route, typed failure), and durable restart via the store."""

import collections
import random
import time

import pytest

import repro
from repro import Config
from repro.errors import ShardUnavailableError
from repro.executors import ThreadPoolExecutor
from repro.service import ServiceClient, WorkflowGateway
from repro.service.shard import ShardRouter, _ring_hash

from faults import GatewayHarness, wait_for


def double(x):
    return x * 2


def slow_double(x, duration=0.02):
    time.sleep(duration)
    return x * 2


class StubShard:
    """Duck-typed stand-in for GatewayShard: just what the router reads."""

    def __init__(self, index, load=0, alive=True):
        self.index = index
        self.alive = alive
        self._load = load

    def load(self):
        return self._load


def make_router(loads, vnodes=64, spillover=2.0, seed=7):
    shards = [StubShard(i, load=ld) for i, ld in enumerate(loads)]
    return shards, ShardRouter(shards, vnodes=vnodes, spillover=spillover,
                               rng=random.Random(seed))


class TestRingRouter:
    def test_placement_hash_is_process_stable(self):
        # Unlike hash(), the ring hash must not vary with PYTHONHASHSEED.
        assert _ring_hash("alice") == _ring_hash("alice")
        assert _ring_hash("alice") != _ring_hash("bob")

    def test_home_is_deterministic_across_router_instances(self):
        _, r1 = make_router([0, 0, 0, 0])
        _, r2 = make_router([0, 0, 0, 0])
        for i in range(50):
            tenant = f"tenant-{i}"
            assert r1.home(tenant).index == r2.home(tenant).index

    def test_homes_spread_across_shards(self):
        _, router = make_router([0, 0, 0, 0])
        homes = collections.Counter(
            router.home(f"tenant-{i}").index for i in range(400)
        )
        # Every shard owns a non-trivial arc of the ring.
        assert set(homes) == {0, 1, 2, 3}
        assert min(homes.values()) >= 400 // 16

    def test_idle_fleet_stays_sticky(self):
        shards, router = make_router([0, 0, 0])
        for i in range(20):
            tenant = f"tenant-{i}"
            assert router.route(tenant) is router.home(tenant)

    def test_overloaded_home_spills_to_least_loaded(self):
        shards, router = make_router([0, 0, 0], spillover=2.0)
        tenant = next(
            f"t-{i}" for i in range(100) if _home_index(router, f"t-{i}") == 1
        )
        shards[1]._load = 50
        shards[0]._load = 3
        shards[2]._load = 1
        # home load 50 > 2.0 * (1 + 1): spill to the floor shard.
        assert router.route(tenant) is shards[2]

    def test_moderate_home_load_does_not_spill(self):
        shards, router = make_router([0, 0, 0], spillover=2.0)
        tenant = next(
            f"t-{i}" for i in range(100) if _home_index(router, f"t-{i}") == 1
        )
        shards[1]._load = 4
        shards[0]._load = 1
        shards[2]._load = 1
        # 4 <= 2.0 * (1 + 1): hysteresis keeps the tenant home.
        assert router.route(tenant) is shards[1]

    def test_dead_home_routes_to_live_floor(self):
        shards, router = make_router([5, 0, 2])
        tenant = next(
            f"t-{i}" for i in range(100) if _home_index(router, f"t-{i}") == 0
        )
        shards[0].alive = False
        assert router.route(tenant) is shards[1]
        assert router.live_count() == 2

    def test_all_dead_routes_none(self):
        shards, router = make_router([0, 0])
        for s in shards:
            s.alive = False
        assert router.route("anyone") is None
        assert router.live_count() == 0

    def test_tie_break_is_random_among_floor_shards(self):
        shards, router = make_router([0, 0, 0, 0], spillover=1.0)
        tenant = next(
            f"t-{i}" for i in range(100) if _home_index(router, f"t-{i}") == 0
        )
        shards[0]._load = 100  # force spill; everyone else ties at 0
        picked = {router.route(tenant).index for _ in range(60)}
        assert picked <= {1, 2, 3} and len(picked) >= 2


def _home_index(router, tenant):
    return router.home(tenant).index


# ---------------------------------------------------------------------------
# Sharded gateway integration
# ---------------------------------------------------------------------------

def make_dfk(run_dir, max_threads=4):
    return repro.DataFlowKernel(
        Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=max_threads)],
            run_dir=run_dir,
            strategy="none",
            app_cache=False,
        )
    )


@pytest.fixture
def two_dfks(tmp_path):
    dfks = [make_dfk(str(tmp_path / f"dfk-{i}")) for i in range(2)]
    yield dfks
    for dfk in dfks:
        dfk.cleanup()


class TestShardedGateway:
    def test_roundtrip_across_two_shards(self, two_dfks):
        with WorkflowGateway(two_dfks) as gw:
            assert len(gw.shards) == 2
            clients = [
                ServiceClient(gw.host, gw.port, tenant=f"tenant-{i}")
                for i in range(6)
            ]
            try:
                futures = {
                    c.tenant: [c.submit(double, i) for i in range(5)]
                    for c in clients
                }
                for futs in futures.values():
                    assert [f.result(timeout=15) for f in futs] == [0, 2, 4, 6, 8]
            finally:
                for c in clients:
                    c.close()
            stats = gw.shard_stats()
            assert len(stats) == 2
            assert sum(s["completed"] for s in stats) == 30
            # With 6 tenants hashed over 2 shards, both should see work.
            assert all(s["dispatched"] > 0 for s in stats)

    def test_welcome_carries_home_shard(self, two_dfks):
        with WorkflowGateway(two_dfks) as gw:
            clients = [
                ServiceClient(gw.host, gw.port, tenant=f"tenant-{i}")
                for i in range(8)
            ]
            try:
                shards_seen = {c.shard for c in clients}
                assert all(c.shard in (0, 1) for c in clients)
                assert shards_seen == {0, 1}
            finally:
                for c in clients:
                    c.close()

    def test_single_dfk_constructor_still_unsharded(self, two_dfks):
        with WorkflowGateway(two_dfks[0]) as gw:
            assert len(gw.shards) == 1
            with ServiceClient(gw.host, gw.port, tenant="alice") as client:
                assert client.shard == 0
                assert client.submit(double, 4).result(timeout=10) == 8

    def test_kill_shard_reroutes_without_duplicates(self, two_dfks):
        """Kill one shard mid-run: every future still completes correctly
        on the survivor, and no result is delivered twice."""
        with WorkflowGateway(two_dfks, window=8) as gw:
            clients = [
                ServiceClient(gw.host, gw.port, tenant=f"tenant-{i}")
                for i in range(4)
            ]
            try:
                futures = [
                    c.submit(slow_double, i) for c in clients for i in range(12)
                ]
                # Let some tasks dispatch, then kill whichever shard is busier.
                time.sleep(0.05)
                victim = max(gw.shards, key=lambda s: s.load()).index
                gw.kill_shard(victim)
                assert not gw.shards[victim].alive
                results = [f.result(timeout=60) for f in futures]
                assert results == [i * 2 for _ in clients for i in range(12)]
                for c in clients:
                    assert c.duplicate_results == 0
                assert gw.shard_stats()[victim]["alive"] == 0
            finally:
                for c in clients:
                    c.close()

    def test_no_live_shard_raises_typed_error(self, two_dfks):
        with WorkflowGateway(two_dfks[0]) as gw:
            with ServiceClient(gw.host, gw.port, tenant="alice") as client:
                assert client.submit(double, 1).result(timeout=10) == 2
                gw.kill_shard(0)
                future = client.submit(double, 2)
                with pytest.raises(ShardUnavailableError) as err:
                    future.result(timeout=10)
                assert err.value.shard == 0

    def test_dead_shard_tasks_fail_typed_when_no_survivor(self, two_dfks):
        """In-flight work on the only shard dies with it — as a typed
        failure result, not a hang."""
        with WorkflowGateway(two_dfks[0], window=2) as gw:
            with ServiceClient(gw.host, gw.port, tenant="alice") as client:
                futures = [client.submit(slow_double, i, 0.2) for i in range(6)]
                time.sleep(0.05)
                gw.kill_shard(0)
                failures = 0
                for f in futures:
                    with pytest.raises(ShardUnavailableError):
                        f.result(timeout=10)
                    failures += 1
                assert failures == 6


# ---------------------------------------------------------------------------
# Durable sessions: the store survives gateway death
# ---------------------------------------------------------------------------

class TestDurableRestart:
    def test_restart_resumes_sessions_and_replays_results(self, two_dfks, tmp_path):
        """Soft restart: the new incarnation reloads every session from the
        store and replays acked results to resuming clients."""
        harness = GatewayHarness(
            two_dfks, store_path=str(tmp_path / "sessions.db"),
            session_ttl_s=30.0,
        ).start()
        try:
            client = ServiceClient(
                "127.0.0.1", harness.gw_port, tenant="alice",
                reconnect_interval=0.05, max_reconnect_attempts=80,
            )
            try:
                futures = [client.submit(double, i) for i in range(8)]
                assert [f.result(timeout=15) for f in futures] == [
                    i * 2 for i in range(8)
                ]
                harness.restart()
                # The reincarnation recovered the session from SQLite: the
                # client resumes (no auth error, no lost identity) and new
                # work flows on the same session.
                more = [client.submit(double, i) for i in range(8, 12)]
                assert [f.result(timeout=30) for f in more] == [
                    i * 2 for i in range(8, 12)
                ]
                assert client.duplicate_results == 0
                assert client.reconnects >= 1
            finally:
                client.close()
        finally:
            harness.close()

    def test_hard_kill_preserves_acked_results(self, two_dfks, tmp_path):
        """kill -9 the gateway mid-run: every result a client already holds
        stays valid, unfinished work re-runs from the write-ahead task log,
        and nothing is delivered twice."""
        harness = GatewayHarness(
            two_dfks, store_path=str(tmp_path / "sessions.db"),
            session_ttl_s=30.0,
        ).start()
        try:
            client = ServiceClient(
                "127.0.0.1", harness.gw_port, tenant="alice",
                reconnect_interval=0.05, max_reconnect_attempts=80,
            )
            try:
                futures = [client.submit(slow_double, i) for i in range(16)]
                # Wait until at least a few results are acked and delivered.
                assert wait_for(
                    lambda: sum(f.done() for f in futures) >= 3, timeout=30
                )
                harness.restart(hard=True)
                assert [f.result(timeout=60) for f in futures] == [
                    i * 2 for i in range(16)
                ]
                assert client.duplicate_results == 0
            finally:
                client.close()
        finally:
            harness.close()

    def test_unacked_results_rerun_not_lost(self, two_dfks, tmp_path):
        """Results that completed but never reached the store's durable
        commit are re-executed after a hard kill — the client still gets
        every answer exactly once."""
        harness = GatewayHarness(
            two_dfks, store_path=str(tmp_path / "sessions.db"),
            session_ttl_s=30.0, window=4,
        ).start()
        try:
            client = ServiceClient(
                "127.0.0.1", harness.gw_port, tenant="alice",
                reconnect_interval=0.05, max_reconnect_attempts=80,
            )
            try:
                futures = [client.submit(slow_double, i, 0.05) for i in range(12)]
                time.sleep(0.08)  # mid-run: some done, some in flight
                harness.restart(hard=True)
                assert [f.result(timeout=60) for f in futures] == [
                    i * 2 for i in range(12)
                ]
                assert client.duplicate_results == 0
            finally:
                client.close()
        finally:
            harness.close()
