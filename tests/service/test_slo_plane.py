"""End-to-end acceptance for the live ops plane (SLO + stragglers + console).

The issue's pinned scenario: a tenant with a 250ms p99 objective runs
alongside a saturating batch tenant. The slow tenant's burn-rate alert must
show up on every surface at once — ``GET /v1/alerts``, the ``alerts`` TCP
admin command, and the ``repro_slo_burn`` gauge on ``/metrics`` — and an
injected slow task must land in the straggler list with its trace id and
worker attribution. ``tools/repro_top.py --once --plain`` renders all of it
headless, and ``/v1/healthz`` carries the session-store writer lag.
"""

import http.client
import os
import subprocess
import sys
import time

import pytest

import repro
from repro import Config
from repro.executors import HighThroughputExecutor, ThreadPoolExecutor
from repro.monitoring.db import SQLiteStore
from repro.monitoring.hub import MonitoringHub
from repro.service import HttpEdge, ServiceClient, WorkflowGateway

from test_http_api import open_session, request, session_headers

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: The issue's scenario: interactive tenant promises a 250ms p99. Short
#: windows keep the test fast; both stay far longer than the test's runtime
#: so nothing the assertions need expires mid-flight.
TENANT_SLOS = {"interactive": {"p99_ms": 250, "window_s": 30, "slow_window_s": 60}}


def double(x):
    return x * 2


def snooze(seconds):
    time.sleep(seconds)
    return seconds


def wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def scrape(edge):
    """GET /metrics raw (text/plain, so not request())."""
    conn = http.client.HTTPConnection(edge.host, edge.port, timeout=15)
    conn.request("GET", "/metrics", None, {})
    response = conn.getresponse()
    body = response.read().decode("utf-8")
    conn.close()
    return response.status, body


def repro_top_once(edge):
    """One headless console frame; returns the CompletedProcess."""
    return subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "repro_top.py"),
         f"http://{edge.host}:{edge.port}", "--once", "--plain"],
        capture_output=True, text=True, timeout=60,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
    )


@pytest.fixture
def slo_dfk(run_dir):
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=4)],
        run_dir=run_dir,
        strategy="none",
        service_tenant_slos=TENANT_SLOS,
    )
    dfk = repro.load(cfg)
    yield dfk
    repro.clear()


@pytest.fixture
def gateway(slo_dfk):
    with WorkflowGateway(slo_dfk, session_ttl_s=10.0) as gw:
        yield gw


@pytest.fixture
def edge(gateway):
    server = HttpEdge(gateway, registry={"double": double, "snooze": snooze})
    server.start()
    yield server
    server.stop()


class TestSloBurnEndToEnd:
    """250ms-p99 tenant + saturating batch tenant -> alert on every surface."""

    def _saturate(self, edge):
        batch = open_session(edge, tenant="batch")
        for i in range(8):
            status, _h, _b = request(edge, "POST", "/v1/tasks",
                                     {"fn": "double", "args": [i]},
                                     session_headers(batch), tenant="batch")
            assert status == 202
        interactive = open_session(edge, tenant="interactive")
        for _ in range(6):  # every one blows the 250ms target
            status, _h, _b = request(edge, "POST", "/v1/tasks",
                                     {"fn": "snooze", "args": [0.4]},
                                     session_headers(interactive),
                                     tenant="interactive")
            assert status == 202

        def alert_up():
            _s, _h, body = request(edge, "GET", "/v1/alerts", tenant=None)
            return body if body.get("alerts") else None

        assert wait_for(lambda: alert_up() is not None, timeout=20.0)
        return alert_up()

    def test_burn_alert_on_every_surface(self, gateway, edge):
        body = self._saturate(edge)

        # Surface 1: GET /v1/alerts — the typed alert plus windowed state.
        (alert,) = body["alerts"]
        assert alert["kind"] == "slo_burn"
        assert alert["state"] == "firing"
        assert alert["tenant"] == "interactive"
        assert alert["objective"] == "p99_ms"
        assert alert["target_ms"] == pytest.approx(250.0)
        assert alert["fast_burn"] >= 1.0
        assert alert["slow_burn"] >= 1.0
        assert alert["observed_ms"] is not None and alert["observed_ms"] > 250

        snap = body["slo"]["interactive"]
        assert snap["count"] >= 5
        assert snap["p50_ms"] is not None and snap["p50_ms"] > 250
        assert snap["p99_ms"] is not None and snap["p99_ms"] > 250
        (objective,) = snap["objectives"]
        assert objective["firing"] is True
        # The batch tenant is tracked too, with no objective declared.
        assert wait_for(lambda: request(edge, "GET", "/v1/alerts", tenant=None)
                        [2]["slo"].get("batch", {}).get("count", 0) >= 1)
        _s, _h, body2 = request(edge, "GET", "/v1/alerts", tenant=None)
        assert body2["slo"]["batch"]["objectives"] == []

        # Surface 2: the alerts TCP admin command.
        with ServiceClient(gateway.host, gateway.port,
                           tenant="interactive") as client:
            payload = client.alerts()
        assert payload["alerts"][0]["tenant"] == "interactive"
        assert payload["slo"]["interactive"]["objectives"][0]["firing"] is True

        # Surface 3: the repro_slo_burn gauge on /metrics, both windows.
        status, text = scrape(edge)
        assert status == 200
        assert ('repro_slo_burn{objective="p99_ms",tenant="interactive",'
                'window="fast"}') in text
        assert ('repro_slo_burn{objective="p99_ms",tenant="interactive",'
                'window="slow"}') in text

        # /v1/stats serves the one-call operator overview.
        status, _h, stats = request(edge, "GET", "/v1/stats", tenant=None)
        assert status == 200
        assert "interactive" in stats["tenants"]
        assert len(stats["shards"]) == 1 and stats["shards"][0]["alive"]
        assert stats["sessions"] >= 2
        assert stats["store_lag_ms"] == 0.0  # no durable store configured

        # And the console renders the firing state headless.
        proc = repro_top_once(edge)
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        for section in ("SHARDS", "TENANTS", "ALERTS", "STRAGGLERS"):
            assert section in out
        assert "interactive" in out
        assert "slo_burn" in out
        assert "FIRING" in out
        assert "p99_ms<=250" in out

    def test_on_alert_hook_fires_on_the_rising_edge(self, slo_dfk):
        fired = []
        with WorkflowGateway(slo_dfk, session_ttl_s=10.0,
                             on_alert=fired.append) as gw:
            server = HttpEdge(gw, registry={"snooze": snooze})
            server.start()
            try:
                session = open_session(server, tenant="interactive")
                for _ in range(6):
                    request(server, "POST", "/v1/tasks",
                            {"fn": "snooze", "args": [0.4]},
                            session_headers(session), tenant="interactive")
                assert wait_for(lambda: request(
                    server, "GET", "/v1/alerts", tenant=None)[2].get("alerts"),
                    timeout=20.0)
            finally:
                server.stop()
        assert len(fired) == 1
        assert fired[0].tenant == "interactive"


class TestHealthzStoreLag:
    def test_healthz_reports_lag_and_degrades_past_threshold(self, gateway,
                                                             edge):
        status, _h, body = request(edge, "GET", "/v1/healthz", tenant=None)
        assert status == 200
        assert body["status"] == "ok"
        assert body["store_lag_ms"] == 0.0

        # A wedged store writer: still serving, but not durable — degraded,
        # not down (503 stays reserved for zero live shards).
        gateway.store_lag_ms = lambda: gateway.store_degraded_ms + 500.0
        status, _h, body = request(edge, "GET", "/v1/healthz", tenant=None)
        assert status == 200
        assert body["status"] == "degraded"
        assert body["store_lag_ms"] > gateway.store_degraded_ms


class TestReproTopCli:
    def test_unreachable_edge_exits_nonzero(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "tools", "repro_top.py"),
             "http://127.0.0.1:1", "--once", "--plain"],
            capture_output=True, text=True, timeout=60,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == 1
        assert "unreachable" in proc.stderr

    def test_quiet_gateway_renders_a_clean_frame(self, edge):
        proc = repro_top_once(edge)
        assert proc.returncode == 0, proc.stderr
        assert "status=ok" in proc.stdout
        assert "ALERTS (0 active)" in proc.stdout


class TestStragglerPlaneEndToEnd:
    """An injected 10x-slow task is flagged live, with worker attribution,
    and the same run feeds the resource histograms and trace_report."""

    def test_slow_task_flagged_with_trace_and_worker(self, run_dir, tmp_path):
        db_path = str(tmp_path / "monitoring.db")
        store = SQLiteStore(db_path)
        hub = MonitoringHub(store=store)
        cfg = Config(
            executors=[HighThroughputExecutor(label="htex_slo",
                                              workers_per_node=2,
                                              worker_mode="thread")],
            monitoring=hub,
            run_dir=run_dir,
            strategy="none",
            # Small-model knobs so eight warmup tasks train the detector.
            service_straggler_min_samples=5,
            service_straggler_min_age_s=0.2,
            service_straggler_factor=3.0,
        )
        dfk = repro.load(cfg)
        slow_trace = None
        try:
            with WorkflowGateway(dfk) as gw:
                server = HttpEdge(gw, registry={"double": double,
                                                "snooze": snooze})
                server.start()
                try:
                    session = open_session(server, tenant="interactive")
                    for i in range(8):  # healthy completions: the model
                        status, _h, _b = request(
                            server, "POST", "/v1/tasks",
                            {"fn": "double", "args": [i]},
                            session_headers(session), tenant="interactive")
                        assert status == 202
                    assert wait_for(lambda: gw.stats().get(
                        "interactive", {}).get("completed") == 8)

                    # Inject the slow task and catch it in flight.
                    status, _h, accepted = request(
                        server, "POST", "/v1/tasks",
                        {"fn": "snooze", "args": [5.0]},
                        session_headers(session), tenant="interactive")
                    assert status == 202
                    slow_trace = accepted["trace_id"]
                    assert slow_trace

                    found = {}

                    def straggler_seen():
                        _s, _h2, body = request(server, "GET", "/v1/alerts",
                                                tenant=None)
                        for row in body.get("stragglers") or []:
                            if row.get("trace_id") == slow_trace:
                                found.update(row)
                                return True
                        return False

                    assert wait_for(straggler_seen, timeout=4.0)
                    assert found["tenant"] == "interactive"
                    assert found["hop"] == "dispatched"
                    assert found["worker"]  # interchange-stamped manager id
                    assert found["age_s"] >= 0.2
                    assert found["over"] > 1.0
                    assert found["task"] is not None

                    # The console renders the live straggler too.
                    proc = repro_top_once(server)
                    assert proc.returncode == 0, proc.stderr
                    assert slow_trace in proc.stdout
                    assert "STRAGGLERS" in proc.stdout

                    # Let it finish; per-task resource histograms follow.
                    task_id = accepted["task_id"]
                    assert wait_for(lambda: request(
                        server, "GET", f"/v1/tasks/{task_id}",
                        headers=session_headers(session),
                        tenant="interactive")[2].get("status") == "done",
                        timeout=20.0)
                    status, text = scrape(server)
                    assert status == 200
                    assert 'repro_task_cpu_seconds_count{executor="htex_slo"}' in text
                    assert 'repro_task_maxrss_kb_bucket{executor="htex_slo",le=' in text
                    assert 'repro_task_maxrss_kb_bucket{executor="htex_slo",le="+Inf"} 9' in text
                finally:
                    server.stop()
        finally:
            repro.clear()  # closes the hub and the SQLite store

        # The slow task tops the critical-path ranking offline.
        proc = subprocess.run(
            [sys.executable,
             os.path.join(REPO_ROOT, "tools", "trace_report.py"),
             db_path, "--slowest", "3"],
            capture_output=True, text=True, timeout=60,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == 0, proc.stderr
        assert "by worst critical-path hop" in proc.stdout
        assert "slowest hop:" in proc.stdout
        assert slow_trace in proc.stdout
        # Ranked first: nothing else in the run slept five seconds.
        first_trace_line = next(line for line in proc.stdout.splitlines()
                                if "trace-" in line)
        assert slow_trace in first_trace_line
