"""Tests for the durable SQLite session store.

Covers the three failure shapes the store exists for: crash-mid-write (a
torn WAL tail must roll back to the committed prefix, never corrupt),
concurrent session eviction racing a resume's writes (single-writer
ordering must linearize them), and the replay-equivalence property — what a
restarted store replays is exactly what an unrestarted one would have.
"""

import os
import pathlib
import shutil
import tempfile
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.store import SessionStore


def make_store(path, flush_ms=0.0):
    return SessionStore(str(path), flush_ms=flush_ms).start()


class TestRoundtrip:
    def test_empty_load(self, tmp_path):
        store = make_store(tmp_path / "s.db")
        assert store.load() == {}
        store.close()

    def test_sessions_tasks_results_roundtrip(self, tmp_path):
        path = tmp_path / "s.db"
        store = make_store(path)
        store.save_session("sess-1", "alice", "tok-1")
        store.append_task("sess-1", 0, b"task-0", b"spec-0")
        store.append_task("sess-1", 1, b"task-1", None)
        store.append_result("sess-1", 1, 0, True, b"result-0", replay_limit=10)
        assert store.flush()
        store.close()

        loaded = SessionStore(str(path)).load()
        rec = loaded["sess-1"]
        assert rec.tenant == "alice"
        assert rec.session_token == "tok-1"
        assert rec.seq == 1
        # Task 0 finished (its write-ahead row retired); task 1 survives.
        assert set(rec.tasks) == {1}
        assert rec.tasks[1] == (b"task-1", None)
        assert rec.results == [(1, 0, True, b"result-0")]

    def test_result_trims_replay_window(self, tmp_path):
        path = tmp_path / "s.db"
        store = make_store(path)
        store.save_session("sess-1", "alice", "tok")
        for seq in range(1, 11):
            store.append_result("sess-1", seq, seq, True, b"r%d" % seq, replay_limit=3)
        assert store.flush()
        store.close()
        rec = SessionStore(str(path)).load()["sess-1"]
        assert [row[0] for row in rec.results] == [8, 9, 10]
        assert rec.seq == 10

    def test_delete_session_cascades(self, tmp_path):
        path = tmp_path / "s.db"
        store = make_store(path)
        store.save_session("sess-1", "alice", "tok")
        store.append_task("sess-1", 0, b"t", None)
        store.append_result("sess-1", 1, 1, False, b"r", replay_limit=5)
        store.delete_session("sess-1")
        assert store.flush()
        store.close()
        assert SessionStore(str(path)).load() == {}

    def test_durable_callbacks_fire_in_order(self, tmp_path):
        store = make_store(tmp_path / "s.db", flush_ms=1.0)
        fired = []
        store.save_session("s", "a", "t", on_durable=lambda: fired.append("session"))
        for i in range(5):
            store.append_task("s", i, b"x", None,
                             on_durable=lambda i=i: fired.append(i))
        assert store.flush()
        assert fired == ["session", 0, 1, 2, 3, 4]
        store.close()


class TestWriterLag:
    def test_lag_is_zero_when_caught_up(self, tmp_path):
        store = make_store(tmp_path / "s.db")
        assert store.lag_ms() == 0.0
        store.save_session("sess-1", "alice", "tok")
        assert store.flush()
        assert store.lag_ms() == 0.0
        store.close()

    def test_lag_tracks_the_oldest_unwritten_op(self, tmp_path):
        # No writer yet: enqueued ops can only age.
        store = SessionStore(str(tmp_path / "s.db"), flush_ms=0.0)
        store.save_session("sess-1", "alice", "tok")
        time.sleep(0.05)
        first = store.lag_ms()
        assert first >= 40.0
        time.sleep(0.02)
        assert store.lag_ms() > first  # still growing: same head op
        # Starting the writer drains the backlog and resets the clock.
        store.start()
        assert store.flush()
        assert store.lag_ms() == 0.0
        store.close()

    def test_stalled_writer_shows_lag_behind_queued_ops(self, tmp_path):
        store = make_store(tmp_path / "s.db")
        entered = threading.Event()
        gate = threading.Event()

        def stall():  # park the writer inside a durable callback
            entered.set()
            gate.wait()

        store._ops.put(([], stall))
        assert entered.wait(5)  # the op below must miss the stalled batch
        store.append_task("sess-1", 0, b"t", None)
        time.sleep(0.05)
        try:
            assert store.lag_ms() >= 40.0
        finally:
            gate.set()
        assert store.flush()
        assert store.lag_ms() == 0.0
        store.close()


class TestCrash:
    def test_abandon_loses_only_unflushed(self, tmp_path):
        """kill -9 semantics: committed batches survive, queued ops die."""
        path = tmp_path / "s.db"
        store = make_store(path)
        store.save_session("sess-1", "alice", "tok")
        store.append_result("sess-1", 1, 0, True, b"acked", replay_limit=10)
        assert store.flush()  # the "acknowledged" prefix
        # Stall the writer so the next ops stay queued, then abandon.
        gate = threading.Event()
        store._ops.put(([], gate.wait))  # block the writer inside a callback
        store.append_result("sess-1", 2, 1, True, b"never-acked", replay_limit=10)
        store.abandon()
        gate.set()
        rec = SessionStore(str(path)).load()["sess-1"]
        assert [row[0] for row in rec.results] == [1]
        assert rec.seq == 1

    def test_truncated_wal_tail_recovers_committed_prefix(self, tmp_path):
        """A crash image with a torn WAL tail opens cleanly and keeps every
        committed write (SQLite discards the un-checksummed tail)."""
        path = tmp_path / "s.db"
        store = make_store(path)
        store.save_session("sess-1", "alice", "tok")
        assert store.flush()
        # Ten separate group commits (ten WAL transactions) followed by one
        # big one: the torn tail can cost the last commit, never the prefix.
        for seq in range(1, 11):
            store.append_result("sess-1", seq, seq, True, b"r%d" % seq,
                                replay_limit=100)
            assert store.flush()
        for seq in range(11, 21):
            store.append_result("sess-1", seq, seq, True, b"r%d" % seq,
                                replay_limit=100)
        assert store.flush()
        # Take a crash image while the store is still open (no clean close,
        # no checkpoint): db + WAL as a power cut would leave them.
        crash = tmp_path / "crash"
        crash.mkdir()
        shutil.copy(path, crash / "s.db")
        wal = str(path) + "-wal"
        assert os.path.exists(wal), "store must be running in WAL mode"
        shutil.copy(wal, crash / "s.db-wal")
        store.abandon()
        # Tear the copied WAL: chop a partial frame off the end.
        torn = crash / "s.db-wal"
        size = torn.stat().st_size
        with open(torn, "r+b") as fh:
            fh.truncate(max(32, size - 100))
        recovered = SessionStore(str(crash / "s.db")).load()
        rec = recovered["sess-1"]
        seqs = [row[0] for row in rec.results]
        # The committed prefix survives in order; nothing is corrupt. The
        # torn frame may cost the final commit, never the middle: WAL
        # recovery stops at the first frame that fails its checksum.
        assert len(seqs) >= 10
        assert seqs == list(range(1, len(seqs) + 1))


class TestConcurrency:
    def test_eviction_racing_resume_writes(self, tmp_path):
        """A TTL eviction (delete) racing a resume's appends must linearize:
        the store ends in one of the two orderings, never a torn mix where
        results survive their session row."""
        path = tmp_path / "s.db"
        store = make_store(path, flush_ms=0.5)
        store.save_session("sess-1", "alice", "tok")
        assert store.flush()
        start = threading.Barrier(3)

        def evict():
            start.wait()
            store.delete_session("sess-1")

        def resume():
            start.wait()
            store.save_session("sess-1", "alice", "tok")
            for seq in range(1, 6):
                store.append_result("sess-1", seq, seq, True, b"r", replay_limit=10)

        threads = [threading.Thread(target=evict), threading.Thread(target=resume)]
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join()
        assert store.flush()
        store.close()
        loaded = SessionStore(str(path)).load()
        if "sess-1" in loaded:
            rec = loaded["sess-1"]
            # Delete-then-resume ordering: full resume state. Interleaved
            # (delete landed mid-appends): a contiguous suffix of appends.
            seqs = [row[0] for row in rec.results]
            assert seqs == sorted(seqs)
            assert all(1 <= s <= 5 for s in seqs)
        # else: resume-then-delete ordering — cascade removed everything,
        # which load() must report as a cleanly absent session.

    def test_many_threads_one_writer(self, tmp_path):
        path = tmp_path / "s.db"
        store = make_store(path, flush_ms=0.2)

        def tenant(i):
            sid = f"sess-{i}"
            store.save_session(sid, f"t{i}", "tok")
            for seq in range(1, 21):
                store.append_result(sid, seq, seq, True, b"r", replay_limit=8)

        threads = [threading.Thread(target=tenant, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.flush()
        store.close()
        loaded = SessionStore(str(path)).load()
        assert len(loaded) == 8
        for rec in loaded.values():
            assert [row[0] for row in rec.results] == list(range(13, 21))
            assert rec.seq == 20


# ---------------------------------------------------------------------------
# Property: replay after a restart == replay without one
# ---------------------------------------------------------------------------

#: One op: (session 0/1, kind) — kind 0 = submit (write-ahead task),
#: 1 = result for the oldest pending task, 2 = evict the session.
_OPS = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 2)),
    min_size=1, max_size=40,
)


def _apply(store, ops, replay_limit=4):
    """Drive the store like a gateway would; mirror into a python model."""
    model = {}
    counters = {}
    for sid_idx, kind in ops:
        sid = f"sess-{sid_idx}"
        if sid not in model:
            store.save_session(sid, f"tenant-{sid_idx}", "tok")
            model[sid] = {"tasks": {}, "results": [], "seq": 0}
            counters.setdefault(sid, 0)
        state = model[sid]
        if kind == 0:
            cid = counters[sid]
            counters[sid] += 1
            store.append_task(sid, cid, b"task", None)
            state["tasks"][cid] = (b"task", None)
        elif kind == 1 and state["tasks"]:
            cid = min(state["tasks"])
            del state["tasks"][cid]
            seq = state["seq"] + 1
            state["seq"] = seq
            store.append_result(sid, seq, cid, True, b"r%d" % seq, replay_limit)
            state["results"].append((seq, cid, True, b"r%d" % seq))
            state["results"] = [
                row for row in state["results"] if row[0] > seq - replay_limit
            ]
        elif kind == 2:
            store.delete_session(sid)
            del model[sid]
            # A later op on the same slot re-creates the session from
            # scratch (fresh seq/cid space), as a fresh hello would.
            counters.pop(sid, None)
    return model


def _snapshot(loaded):
    return {
        sid: (rec.tenant, rec.seq, rec.results, dict(rec.tasks))
        for sid, rec in loaded.items()
    }


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=_OPS, split=st.integers(0, 40))
def test_replay_after_restart_equals_replay_without_restart(tmp_path, ops, split):
    """Closing and reopening the store mid-stream (a restart) must yield the
    same final replay state as never restarting — byte for byte."""
    base = pathlib.Path(tempfile.mkdtemp(dir=tmp_path))
    split = min(split, len(ops))

    straight = make_store(base / "straight.db")
    model = _apply(straight, ops)
    assert straight.flush()
    straight.close()

    restarted = make_store(base / "restart.db")
    _apply(restarted, ops[:split])
    assert restarted.flush()
    restarted.close()
    resumed = make_store(base / "restart.db")
    # Continue the tail against the reopened store, replaying the model
    # state the first half established.
    model_tail = _apply_continuation(resumed, ops, split)
    assert resumed.flush()
    resumed.close()

    loaded_straight = SessionStore(str(base / "straight.db")).load()
    loaded_restarted = SessionStore(str(base / "restart.db")).load()
    assert _snapshot(loaded_straight) == _snapshot(loaded_restarted)
    assert set(loaded_straight) == set(model)
    assert model_tail == model


def _apply_continuation(store, ops, split, replay_limit=4):
    """Re-derive the model over all ops but only issue store writes for the
    tail (the head already committed before the restart)."""
    model = {}
    counters = {}
    for index, (sid_idx, kind) in enumerate(ops):
        live = index >= split
        sid = f"sess-{sid_idx}"
        if sid not in model:
            if live:
                store.save_session(sid, f"tenant-{sid_idx}", "tok")
            model[sid] = {"tasks": {}, "results": [], "seq": 0}
            counters.setdefault(sid, 0)
        state = model[sid]
        if kind == 0:
            cid = counters[sid]
            counters[sid] += 1
            if live:
                store.append_task(sid, cid, b"task", None)
            state["tasks"][cid] = (b"task", None)
        elif kind == 1 and state["tasks"]:
            cid = min(state["tasks"])
            del state["tasks"][cid]
            seq = state["seq"] + 1
            state["seq"] = seq
            if live:
                store.append_result(sid, seq, cid, True, b"r%d" % seq, replay_limit)
            state["results"].append((seq, cid, True, b"r%d" % seq))
            state["results"] = [
                row for row in state["results"] if row[0] > seq - replay_limit
            ]
        elif kind == 2:
            if live:
                store.delete_session(sid)
            del model[sid]
            counters.pop(sid, None)
    return model
