"""Tests for the cluster-scale performance models.

These tests assert the *paper-shaped* facts: latency ordering (Fig. 3),
scaling behaviour and breakdown points (Fig. 4), the capacity table
(Table 2), and the elasticity utilization/makespan trade-off (Fig. 6).
"""


import pytest
from hypothesis import given, settings, strategies as st

from repro.simulation import (
    ElasticitySimulation,
    capacity_table,
    four_stage_workflow,
    get_model,
    latency_samples,
    latency_summary,
    max_throughput,
    scaling_series,
    strong_scaling_time,
    weak_scaling_time,
)
from repro.simulation.elasticity import compare_elastic_vs_static
from repro.simulation.limits import PAPER_TABLE2
from repro.simulation.scaling import sublinear_onset_workers
from repro.simulation.throughput import best_throughput


class TestModels:
    def test_unknown_framework(self):
        with pytest.raises(KeyError):
            get_model("spark")

    def test_latency_calibration_close_to_paper(self):
        paper_ms = {"llex": 3.47, "htex": 6.87, "exex": 9.83, "ipp": 11.72, "dask": 16.19}
        for name, expected in paper_ms.items():
            modeled = get_model(name).single_task_latency_s() * 1000
            assert modeled == pytest.approx(expected, rel=0.10), name

    def test_latency_ordering_matches_fig3(self):
        order = ["threads", "llex", "htex", "exex", "ipp", "dask"]
        latencies = [get_model(n).single_task_latency_s() for n in order]
        assert latencies == sorted(latencies)

    def test_with_overrides(self):
        m = get_model("htex").with_overrides(max_workers=10)
        assert m.max_workers == 10 and get_model("htex").max_workers == 65536


class TestLatencyModel:
    def test_samples_positive_and_centered(self):
        samples = latency_samples("llex", n_samples=500, seed=1)
        assert (samples > 0).all()
        assert abs(samples.mean() - get_model("llex").single_task_latency_s()) < 0.002

    def test_summary_contains_all_frameworks(self):
        summary = latency_summary(["threads", "llex", "htex", "exex", "ipp", "dask"])
        assert set(summary) == {"threads", "llex", "htex", "exex", "ipp", "dask"}
        assert summary["llex"]["mean_ms"] < summary["dask"]["mean_ms"]

    def test_llex_spread_tighter_than_dask(self):
        summary = latency_summary(["llex", "dask"])
        assert summary["llex"]["std_ms"] < summary["dask"]["std_ms"]


class TestScalingModel:
    def test_unsupported_scale_returns_none(self):
        assert strong_scaling_time("ipp", n_workers=4096) is None
        assert strong_scaling_time("htex", n_workers=4096) is not None

    def test_htex_nearly_constant_strong_scaling(self):
        """Fig. 4 top: HTEX no-op completion time stays nearly flat with worker count."""
        t_small = strong_scaling_time("htex", n_workers=256)
        t_large = strong_scaling_time("htex", n_workers=65536)
        assert t_large < 1.5 * t_small

    def test_ipp_degrades_beyond_512_workers(self):
        t512 = strong_scaling_time("ipp", n_workers=512)
        t2048 = strong_scaling_time("ipp", n_workers=2048)
        assert t2048 > 1.5 * t512

    def test_dask_beats_htex_at_small_scale_only(self):
        """Fig. 4: Dask slightly outperforms HTEX below ~1024 workers, then loses."""
        assert strong_scaling_time("dask", 256) < strong_scaling_time("htex", 256)
        assert strong_scaling_time("dask", 4096) > strong_scaling_time("htex", 4096)

    def test_fireworks_order_of_magnitude_slower(self):
        """FireWorks overhead is ~an order of magnitude above the others (even with 10x fewer tasks)."""
        fw = strong_scaling_time("fireworks", 256, n_tasks=5000)
        htex = strong_scaling_time("htex", 256, n_tasks=50000)
        assert fw > 5 * htex

    def test_weak_scaling_flat_then_rises(self):
        t1 = weak_scaling_time("htex", 1, task_duration_s=1.0)
        t1024 = weak_scaling_time("htex", 1024, task_duration_s=1.0)
        t65536 = weak_scaling_time("htex", 65536, task_duration_s=1.0)
        assert t1024 < 2 * t1
        assert t65536 > 2 * t1024

    def test_sublinear_onset_ordering(self):
        """FireWorks departs from ideal weak scaling before IPP, which departs before HTEX/EXEX."""
        onset = {f: sublinear_onset_workers(f, task_duration_s=1.0) for f in ("fireworks", "ipp", "htex", "exex")}
        assert onset["fireworks"] <= onset["ipp"] <= onset["htex"]
        assert onset["fireworks"] <= onset["ipp"] <= onset["exex"]

    def test_longer_tasks_scale_further(self):
        """With 1 s tasks the execution bound dominates, so adding workers helps for longer."""
        noop_1k = strong_scaling_time("htex", 1024, task_duration_s=0.0)
        noop_16k = strong_scaling_time("htex", 16384, task_duration_s=0.0)
        long_1k = strong_scaling_time("htex", 1024, task_duration_s=1.0)
        long_16k = strong_scaling_time("htex", 16384, task_duration_s=1.0)
        assert (long_1k - long_16k) > (noop_1k - noop_16k)

    def test_scaling_series_shape(self):
        series = scaling_series(["htex", "ipp"], mode="strong", worker_counts=[64, 1024, 4096])
        assert set(series) == {"htex", "ipp"}
        assert len(series["htex"]) == 3
        assert series["ipp"][2] is None  # beyond IPP's max workers

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            strong_scaling_time("htex", 0)
        with pytest.raises(ValueError):
            scaling_series(["htex"], mode="diagonal")

    @given(st.integers(1, 16384), st.sampled_from([0.0, 0.01, 0.1, 1.0]))
    @settings(max_examples=50, deadline=None)
    def test_completion_time_monotone_in_tasks(self, workers, duration):
        """More tasks can never finish sooner (sanity invariant of the model)."""
        small = strong_scaling_time("htex", workers, duration, n_tasks=10_000)
        large = strong_scaling_time("htex", workers, duration, n_tasks=50_000)
        assert large >= small


class TestThroughputAndCapacity:
    def test_capacity_table_matches_paper(self):
        table = capacity_table()
        for framework, paper_row in PAPER_TABLE2.items():
            row = table[framework]
            assert row["max_workers"] == paper_row["max_workers"]
            assert row["max_nodes"] == paper_row["max_nodes"]
            assert row["max_tasks_per_s"] == pytest.approx(paper_row["max_tasks_per_s"], rel=0.15)

    def test_throughput_ordering(self):
        """Dask > HTEX ~ EXEX > IPP > FireWorks, as in Table 2."""
        best = {f: best_throughput(f) for f in ("dask", "htex", "exex", "ipp", "fireworks")}
        assert best["dask"] > best["htex"] > best["ipp"] > best["fireworks"]
        assert best["htex"] == pytest.approx(best["exex"], rel=0.2)

    def test_max_throughput_unsupported_scale(self):
        assert max_throughput("ipp", n_workers=100000) is None


class TestElasticity:
    def test_four_stage_workflow_shape(self):
        stages = four_stage_workflow()
        assert [len(s) for s in stages] == [20, 1, 20, 1]
        assert stages[0][0] == 100.0 and stages[1][0] == 50.0

    def test_static_run_matches_paper_numbers(self):
        result = ElasticitySimulation(elastic=False).run()
        assert result.makespan_s == pytest.approx(301, abs=10)
        assert result.utilization == pytest.approx(0.6815, abs=0.03)

    def test_elastic_improves_utilization_at_small_makespan_cost(self):
        comparison = compare_elastic_vs_static()
        static, elastic = comparison["static"], comparison["elastic"]
        assert elastic["utilization"] > static["utilization"] + 0.08
        assert elastic["makespan_s"] >= static["makespan_s"]
        assert elastic["makespan_s"] < static["makespan_s"] * 1.25

    def test_scaling_events_recorded(self):
        result = ElasticitySimulation(elastic=True).run()
        actions = {e["action"] for e in result.scaling_events}
        assert 1.0 in actions and -1.0 in actions

    def test_timeline_and_tasks_complete(self):
        result = ElasticitySimulation(elastic=True).run()
        assert len(result.task_records) == 42
        assert result.timeline[0]["time"] == 0.0

    def test_static_all_workers_always_active(self):
        result = ElasticitySimulation(elastic=False).run()
        assert all(point["active_workers"] == 20 for point in result.timeline)
