"""Tests for the simulated Globus-Auth-style token flow."""


from repro.auth import NativeAppAuthClient, TokenStore


class TestNativeAppFlow:
    def test_flow_issues_scoped_tokens(self):
        client = NativeAppAuthClient(client_id="app123")
        url = client.start_flow(["transfer.api.globus.org", "openid"])
        assert "app123" in url and "transfer.api.globus.org" in url
        tokens = client.complete_flow("code")
        assert set(tokens) == {"transfer.api.globus.org", "openid"}
        assert all("access_token" in t for t in tokens.values())


class TestTokenStore:
    def test_store_and_validate(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "t.json"))
        store.login(["transfer.api.globus.org"])
        token = store.get_token("transfer.api.globus.org")
        assert token is not None
        assert store.has_valid_token("transfer.api.globus.org")
        assert store.validate("transfer.api.globus.org", token)
        assert not store.validate("transfer.api.globus.org", "wrong")

    def test_tokens_persist_on_disk(self, tmp_path):
        path = str(tmp_path / "persist.json")
        TokenStore(path=path).login(["svc"])
        assert TokenStore(path=path).has_valid_token("svc")

    def test_expired_token_invalid(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "exp.json"))
        client = NativeAppAuthClient(token_lifetime_s=-1)
        client.start_flow(["svc"])
        store.store_tokens(client.complete_flow("ok"))
        assert store.get_token("svc") is None

    def test_revoke_and_clear(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "rev.json"))
        store.login(["a", "b"])
        store.revoke("a")
        assert store.get_token("a") is None and store.get_token("b") is not None
        store.clear()
        assert store.get_token("b") is None

    def test_validate_without_required_token(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "none.json"))
        # No entry for this host: connecting without a token is allowed.
        assert store.validate("unknown-host", None)
