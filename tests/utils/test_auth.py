"""Tests for the simulated Globus-Auth-style token flow."""

import pytest

from repro.auth import NativeAppAuthClient, TokenStore


class TestNativeAppFlow:
    def test_flow_issues_scoped_tokens(self):
        client = NativeAppAuthClient(client_id="app123")
        url = client.start_flow(["transfer.api.globus.org", "openid"])
        assert "app123" in url and "transfer.api.globus.org" in url
        tokens = client.complete_flow("code")
        assert set(tokens) == {"transfer.api.globus.org", "openid"}
        assert all("access_token" in t for t in tokens.values())


class TestTokenStore:
    def test_store_and_validate(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "t.json"))
        store.login(["transfer.api.globus.org"])
        token = store.get_token("transfer.api.globus.org")
        assert token is not None
        assert store.has_valid_token("transfer.api.globus.org")
        assert store.validate("transfer.api.globus.org", token)
        assert not store.validate("transfer.api.globus.org", "wrong")

    def test_tokens_persist_on_disk(self, tmp_path):
        path = str(tmp_path / "persist.json")
        TokenStore(path=path).login(["svc"])
        assert TokenStore(path=path).has_valid_token("svc")

    def test_expired_token_invalid(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "exp.json"))
        client = NativeAppAuthClient(token_lifetime_s=-1)
        client.start_flow(["svc"])
        store.store_tokens(client.complete_flow("ok"))
        assert store.get_token("svc") is None

    def test_expired_token_fails_validation(self, tmp_path):
        """The gateway's auth check path: an expired token must not validate."""
        store = TokenStore(path=str(tmp_path / "exp2.json"))
        client = NativeAppAuthClient(token_lifetime_s=-1)
        client.start_flow(["gateway/alice"])
        tokens = client.complete_flow("ok")
        store.store_tokens(tokens)
        stale = str(tokens["gateway/alice"]["access_token"])
        # Neither the (correct but expired) token nor no-token passes: the
        # scope still has an entry, so access demands a *valid* token.
        assert not store.validate("gateway/alice", stale)
        assert not store.validate("gateway/alice", None)

    def test_refresh_issues_new_valid_token(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "ref.json"))
        client = NativeAppAuthClient(token_lifetime_s=-1)
        client.start_flow(["svc"])
        tokens = client.complete_flow("ok")
        store.store_tokens(tokens)
        stale = str(tokens["svc"]["access_token"])
        assert store.get_token("svc") is None  # expired
        fresh = store.refresh("svc")
        assert fresh != stale
        assert store.get_token("svc") == fresh
        assert store.validate("svc", fresh)
        assert not store.validate("svc", stale)

    def test_refresh_persists_across_reload(self, tmp_path):
        """The refreshed token round-trips through the on-disk store."""
        path = str(tmp_path / "refdisk.json")
        store = TokenStore(path=path)
        expired = NativeAppAuthClient(token_lifetime_s=-1)
        expired.start_flow(["svc"])
        store.store_tokens(expired.complete_flow("ok"))
        fresh = store.refresh("svc")
        reloaded = TokenStore(path=path)
        assert reloaded.get_token("svc") == fresh
        assert reloaded.validate("svc", fresh)

    def test_refresh_rejects_nonpositive_lifetime_client(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "bad.json"))
        with pytest.raises(ValueError):
            store.refresh("svc", client=NativeAppAuthClient(token_lifetime_s=-1))

    def test_revoke_and_clear(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "rev.json"))
        store.login(["a", "b"])
        store.revoke("a")
        assert store.get_token("a") is None and store.get_token("b") is not None
        store.clear()
        assert store.get_token("b") is None

    def test_validate_without_required_token(self, tmp_path):
        store = TokenStore(path=str(tmp_path / "none.json"))
        # No entry for this host: connecting without a token is allowed.
        assert store.validate("unknown-host", None)
