"""Tests for small utilities."""

import queue
import socket
import threading
import time

import pytest

from repro.utils.addresses import address_by_hostname, address_by_interface, find_free_port, probe_port_open
from repro.utils.ids import _Counter, id_generator, make_block_id, make_manager_id, make_uid
from repro.utils.threads import AtomicCounter, SimpleQueueDrain
from repro.utils.timers import RepeatedTimer, Timer


class TestIds:
    def test_id_generator_sequence(self):
        gen = id_generator("t")
        assert [next(gen) for _ in range(3)] == ["t0", "t1", "t2"]

    def test_block_ids_unique(self):
        ids = {make_block_id() for _ in range(100)}
        assert len(ids) == 100

    def test_manager_ids_unique(self):
        ids = {make_manager_id() for _ in range(100)}
        assert len(ids) == 100

    def test_make_uid_prefix(self):
        assert make_uid("abc").startswith("abc-")

    def test_counter_thread_safety(self):
        counter = _Counter()
        results = []

        def spin():
            for _ in range(500):
                results.append(counter.next())

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 2000


class TestTimers:
    def test_timer_elapsed(self):
        with Timer() as t:
            time.sleep(0.02)
        assert t.elapsed >= 0.015

    def test_repeated_timer_fires(self):
        hits = []
        timer = RepeatedTimer(0.02, lambda: hits.append(1), name="t")
        timer.start()
        time.sleep(0.15)
        timer.close()
        assert len(hits) >= 3

    def test_repeated_timer_survives_exceptions(self):
        hits = []
        errors = []

        def cb():
            hits.append(1)
            raise RuntimeError("boom")

        timer = RepeatedTimer(0.02, cb, on_error=errors.append)
        timer.start()
        time.sleep(0.1)
        timer.close()
        assert len(hits) >= 2
        assert errors and isinstance(errors[0], RuntimeError)

    def test_repeated_timer_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            RepeatedTimer(0, lambda: None)


class TestAddresses:
    def test_address_by_hostname_resolves(self):
        addr = address_by_hostname()
        socket.inet_aton(addr)  # valid dotted quad

    def test_loopback_interface(self):
        assert address_by_interface("lo") == "127.0.0.1"

    def test_find_free_port_bindable(self):
        port = find_free_port()
        s = socket.socket()
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", port))
        s.close()

    def test_probe_port(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        assert probe_port_open("127.0.0.1", port)
        listener.close()


class TestThreads:
    def test_atomic_counter(self):
        c = AtomicCounter()
        c.increment(5)
        c.decrement(2)
        assert c.value == 3

    def test_queue_drain_processes_items(self):
        q: "queue.Queue" = queue.Queue()
        seen = []
        drain = SimpleQueueDrain(q, seen.append).start()
        for i in range(5):
            q.put(i)
        drain.stop()
        assert seen == [0, 1, 2, 3, 4]

    def test_queue_drain_records_handler_errors(self):
        q: "queue.Queue" = queue.Queue()

        def bad(item):
            raise ValueError(item)

        drain = SimpleQueueDrain(q, bad).start()
        q.put("x")
        drain.stop()
        assert len(drain.errors) == 1
