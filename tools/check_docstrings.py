#!/usr/bin/env python
"""Fail if a public symbol in the service layer is missing a docstring.

Stdlib-only (AST-based) so `make docs-lint` works in environments without
ruff; CI additionally runs ruff's pydocstyle (D) rules, scoped in
pyproject.toml to the same package. "Public" means: the module itself,
plus every class, function, and method whose name does not start with an
underscore (``__init__`` is exempt — the class docstring covers
construction unless the signature warrants its own, and private ``_Name``
classes are exempt along with everything inside them).

Usage: python tools/check_docstrings.py [paths...]
Defaults to src/repro/service and src/repro/scheduling/router.py.
Exits 1 listing each offender as path:line: symbol.
"""

from __future__ import annotations

import ast
import pathlib
import sys

DEFAULT_TARGETS = [
    "src/repro/service",
    "src/repro/scheduling/router.py",
]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk(node: ast.AST, qualname: str, offenders: list, path: pathlib.Path) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not _is_public(child.name):
                continue  # private: skip it and everything nested inside
            label = f"{qualname}.{child.name}" if qualname else child.name
            if ast.get_docstring(child) is None:
                offenders.append((path, child.lineno, label))
            if isinstance(child, ast.ClassDef):
                _walk(child, label, offenders, path)


def check_file(path: pathlib.Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    offenders: list = []
    if ast.get_docstring(tree) is None:
        offenders.append((path, 1, "<module>"))
    _walk(tree, "", offenders, path)
    return offenders


def main(argv: list) -> int:
    targets = argv or DEFAULT_TARGETS
    files: list = []
    for target in targets:
        p = pathlib.Path(target)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.exists():
            files.append(p)
        else:
            print(f"check_docstrings: no such path: {target}", file=sys.stderr)
            return 2
    offenders = []
    for f in files:
        offenders.extend(check_file(f))
    for path, lineno, label in offenders:
        print(f"{path}:{lineno}: missing docstring: {label}")
    if offenders:
        print(f"\n{len(offenders)} public symbol(s) missing docstrings "
              f"across {len(files)} file(s)")
        return 1
    print(f"docstrings OK: {len(files)} file(s) checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
