#!/usr/bin/env python
"""Check intra-repo markdown links (stdlib only).

Scans every tracked ``*.md`` file for inline links/images
(``[text](target)``) and reference definitions (``[ref]: target``),
resolves relative targets against the file's directory, and fails if the
target file does not exist. External links (``http(s)://``, ``mailto:``),
pure fragments (``#section``), and bare anchors inside code spans are
ignored; a ``target#fragment`` link checks only the file part.

Usage: python tools/check_links.py [root]   (default: repo root = cwd)
Exits 1 listing each broken link as path:line: target.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline [text](target) — target up to the first unescaped ')' or space;
#: titles ("...") after a space are dropped.
_INLINE = re.compile(r"\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference definitions: [name]: target
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*(?:\"[^\"]*\")?\s*$")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://", "tel:")


def _iter_md_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        parts = set(path.parts)
        if {".git", "node_modules", "__pycache__", ".venv", "runinfo"} & parts:
            continue
        yield path


def _targets(line: str):
    for match in _INLINE.finditer(line):
        yield match.group(1)
    match = _REFDEF.match(line)
    if match:
        yield match.group(1)


def check_file(path: pathlib.Path, root: pathlib.Path) -> list:
    broken = []
    in_code_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for target in _targets(line):
            if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                broken.append((lineno, target, "escapes the repository"))
                continue
            if not resolved.exists():
                broken.append((lineno, target, "no such file"))
    return broken


def main(argv: list) -> int:
    root = pathlib.Path(argv[0]) if argv else pathlib.Path.cwd()
    n_files = 0
    n_broken = 0
    for path in _iter_md_files(root):
        n_files += 1
        for lineno, target, why in check_file(path, root):
            print(f"{path.relative_to(root)}:{lineno}: broken link: {target} ({why})")
            n_broken += 1
    if n_broken:
        print(f"\n{n_broken} broken intra-repo link(s) across {n_files} markdown file(s)")
        return 1
    print(f"links OK: {n_files} markdown file(s) checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
