#!/usr/bin/env python
"""repro-top: a live terminal ops console for the workflow gateway.

Polls the HTTP edge's unauthenticated ops surfaces —

* ``GET /v1/healthz``  — liveness, per-shard readiness, store writer lag
* ``GET /v1/stats``    — per-tenant admission counters, per-shard occupancy
* ``GET /v1/alerts``   — SLO burn state, stragglers, sick workers
* ``GET /metrics``     — Prometheus text (per-executor resource histograms)

— and renders one screen: shard dispatch rates (derived from successive
polls), per-tenant queue depth / in-flight / windowed p50+p99 against their
SLO targets with a burn-rate sparkline, active alerts, the top stragglers
with worker attribution, and per-executor task CPU/RSS usage.

Interactive mode is stdlib ``curses`` (press ``q`` to quit)::

    python tools/repro_top.py http://127.0.0.1:8080 --interval 2

``--once --plain`` renders a single frame to stdout and exits — the mode CI
and the tier-1 render smoke test use (no tty, no curses)::

    python tools/repro_top.py http://127.0.0.1:8080 --once --plain

Exit status is 0 when the edge answered, 1 when it was unreachable.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Eight-level block ramp for burn-rate sparklines.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: How many polls of burn history back a sparkline (one char per poll).
SPARK_LEN = 30

#: One exposition-format sample line: name{labels} value.
_PROM_LINE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)")
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse exposition text into ``(name, labels, value)`` samples.

    Deliberately minimal: enough for the gauges/histograms this console
    reads, ignoring comments, malformed lines, and non-float values.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _PROM_LINE.match(line)
        if match is None:
            continue
        name, raw_labels, raw_value = match.groups()
        try:
            value = float(raw_value)
        except ValueError:
            continue
        labels = (
            {k: v.replace('\\"', '"') for k, v in _PROM_LABEL.findall(raw_labels)}
            if raw_labels else {}
        )
        samples.append((name, labels, value))
    return samples


def spark(values: List[float], ceiling: float = 2.0) -> str:
    """Render values as a block-character sparkline, clamped at ``ceiling``.

    The default ceiling of 2.0 puts a burn rate of exactly 1.0 (spending
    budget precisely as fast as the SLO allows) mid-ramp, so anything in
    the top half of the sparkline is over budget.
    """
    if not values:
        return ""
    top = len(SPARK_CHARS) - 1
    out = []
    for v in values:
        frac = min(max(v, 0.0), ceiling) / ceiling
        out.append(SPARK_CHARS[round(frac * top)])
    return "".join(out)


class OpsPoller:
    """Fetches the four ops surfaces and keeps cross-poll derived state:
    per-shard dispatch rates and per-objective burn history."""

    def __init__(self, base_url: str, timeout: float = 5.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._last_poll_t: Optional[float] = None
        self._last_dispatched: Dict[int, int] = {}
        self.dispatch_rates: Dict[int, float] = {}
        self.burn_history: Dict[Tuple[str, str], Deque[float]] = {}

    def _get(self, path: str) -> Optional[bytes]:
        try:
            with urllib.request.urlopen(self.base_url + path, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            # healthz answers 503 with a JSON body when no shard is alive —
            # still a frame worth rendering.
            return exc.read()
        except (urllib.error.URLError, OSError, ValueError):
            return None

    def _get_json(self, path: str) -> Optional[Dict[str, Any]]:
        body = self._get(path)
        if body is None:
            return None
        try:
            obj = json.loads(body)
        except ValueError:
            return None
        return obj if isinstance(obj, dict) else None

    def poll(self) -> Optional[Dict[str, Any]]:
        """One frame of console state, or ``None`` if the edge is down."""
        healthz = self._get_json("/v1/healthz")
        if healthz is None:
            return None
        stats = self._get_json("/v1/stats") or {}
        alerts = self._get_json("/v1/alerts") or {}
        metrics_body = self._get("/metrics")
        samples = parse_prometheus(metrics_body.decode("utf-8", "replace")) if metrics_body else []

        now = time.monotonic()
        shards = stats.get("shards") or []
        for index, row in enumerate(shards):
            dispatched = int(row.get("dispatched") or 0)
            prev = self._last_dispatched.get(index)
            if prev is not None and self._last_poll_t is not None and now > self._last_poll_t:
                self.dispatch_rates[index] = max(
                    0.0, (dispatched - prev) / (now - self._last_poll_t)
                )
            self._last_dispatched[index] = dispatched
        self._last_poll_t = now

        for tenant, snap in (alerts.get("slo") or {}).items():
            for objective in snap.get("objectives") or []:
                key = (tenant, str(objective.get("objective")))
                history = self.burn_history.setdefault(key, deque(maxlen=SPARK_LEN))
                history.append(float(objective.get("fast_burn") or 0.0))

        return {
            "healthz": healthz,
            "stats": stats,
            "alerts": alerts,
            "samples": samples,
        }


# ---------------------------------------------------------------------------
# Rendering (shared by plain and curses modes: a list of text lines)
# ---------------------------------------------------------------------------

def _fmt_ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}"


def _resource_rows(samples: List[Tuple[str, Dict[str, str], float]]) -> List[str]:
    """Per-executor CPU/RSS summary from the resource histograms."""
    cpu_sum: Dict[str, float] = {}
    cpu_count: Dict[str, float] = {}
    rss_buckets: Dict[str, List[Tuple[float, float]]] = {}
    for name, labels, value in samples:
        executor = labels.get("executor")
        if executor is None:
            continue
        if name == "repro_task_cpu_seconds_sum":
            cpu_sum[executor] = cpu_sum.get(executor, 0.0) + value
        elif name == "repro_task_cpu_seconds_count":
            cpu_count[executor] = cpu_count.get(executor, 0.0) + value
        elif name == "repro_task_maxrss_kb_bucket":
            le = labels.get("le", "+Inf")
            bound = float("inf") if le == "+Inf" else float(le)
            rss_buckets.setdefault(executor, []).append((bound, value))
    rows = []
    for executor in sorted(cpu_count):
        count = cpu_count[executor]
        mean_ms = (cpu_sum.get(executor, 0.0) / count * 1000.0) if count else 0.0
        # Approximate p95 of peak RSS from the cumulative buckets: the
        # first bucket bound covering 95% of tasks.
        rss95 = "-"
        buckets = sorted(rss_buckets.get(executor, []))
        total = buckets[-1][1] if buckets else 0.0
        for bound, cumulative in buckets:
            if total and cumulative >= 0.95 * total:
                rss95 = "inf" if bound == float("inf") else f"{bound / 1024.0:.0f}MB"
                break
        rows.append(
            f"  {executor:<16} tasks {int(count):>7}  cpu-mean {mean_ms:>8.2f}ms"
            f"  rss-p95<= {rss95}"
        )
    return rows


def render_lines(frame: Dict[str, Any], poller: OpsPoller) -> List[str]:
    """One console frame as plain text lines (no curses dependencies)."""
    healthz = frame["healthz"]
    stats = frame["stats"]
    alerts = frame["alerts"]
    lines: List[str] = []

    status = healthz.get("status", "?")
    lines.append(
        f"repro-top  {poller.base_url}  status={status}"
        f"  sessions={healthz.get('sessions', stats.get('sessions', '?'))}"
        f"  store_lag={_fmt_ms(healthz.get('store_lag_ms'))}ms"
    )
    lines.append("")

    shards = stats.get("shards") or healthz.get("shards") or []
    lines.append("SHARDS   alive  inflight  queued  window  dispatched    rate/s")
    for index, row in enumerate(shards):
        rate = poller.dispatch_rates.get(index)
        lines.append(
            f"  #{index:<5} {('yes' if row.get('alive') else 'NO'):>5}"
            f"  {row.get('inflight', 0):>8}  {row.get('queued', 0):>6}"
            f"  {row.get('window', 0):>6}  {row.get('dispatched', 0):>10}"
            f"  {('-' if rate is None else f'{rate:8.1f}'):>8}"
        )
    lines.append("")

    tenants = stats.get("tenants") or {}
    slo = alerts.get("slo") or {}
    lines.append(
        "TENANTS            queued  running     done   failed"
        "   p50ms    p99ms   slo-objective            burn"
    )
    for tenant in sorted(set(tenants) | set(slo)):
        counts = tenants.get(tenant, {})
        snap = slo.get(tenant, {})
        objectives = snap.get("objectives") or [{}]
        first = objectives[0]
        target = first.get("target_ms")
        objective_text = (
            f"{first.get('objective', '-')}<={target:.0f}" if target is not None else "-"
        )
        history = poller.burn_history.get((tenant, str(first.get("objective"))), [])
        burn = first.get("fast_burn")
        flame = " FIRING" if any(o.get("firing") for o in objectives) else ""
        lines.append(
            f"  {tenant:<16} {counts.get('queued', 0):>6}  {counts.get('running', 0):>7}"
            f"  {counts.get('completed', 0):>7}  {counts.get('failed', 0):>7}"
            f"  {_fmt_ms(snap.get('p50_ms')):>6}  {_fmt_ms(snap.get('p99_ms')):>7}"
            f"   {objective_text:<22} {('-' if burn is None else f'{burn:.2f}'):>5}"
            f" {spark(list(history))}{flame}"
        )
    lines.append("")

    active = alerts.get("alerts") or []
    lines.append(f"ALERTS ({len(active)} active)")
    for alert in active:
        lines.append(
            f"  [{alert.get('kind', 'alert')}] tenant={alert.get('tenant')}"
            f" {alert.get('objective')}<={alert.get('target_ms')}ms"
            f" fast_burn={alert.get('fast_burn'):.2f}"
            f" slow_burn={alert.get('slow_burn'):.2f}"
            f" observed_p={_fmt_ms(alert.get('observed_ms'))}ms"
        )
    lines.append("")

    stragglers = alerts.get("stragglers") or []
    lines.append(f"STRAGGLERS (top {len(stragglers)})")
    for row in stragglers[:10]:
        lines.append(
            f"  {str(row.get('trace_id')):<20} task={row.get('task')}"
            f" tenant={row.get('tenant')} hop={row.get('hop')}"
            f" age={row.get('age_s'):.2f}s p99={row.get('p99_s'):.3f}s"
            f" x{row.get('over'):.1f} worker={row.get('worker')}"
        )
    workers = alerts.get("workers") or []
    sick = [w for w in workers if w.get("sick")]
    if sick:
        lines.append("  sick workers: " + ", ".join(
            f"{w.get('worker')} ({w.get('stragglers')} stuck)" for w in sick
        ))
    lines.append("")

    resource_rows = _resource_rows(frame["samples"])
    if resource_rows:
        lines.append("TASK RESOURCES (per executor)")
        lines.extend(resource_rows)
    return lines


# ---------------------------------------------------------------------------
# Modes
# ---------------------------------------------------------------------------

def run_plain(poller: OpsPoller, interval: float, once: bool) -> int:
    while True:
        frame = poller.poll()
        if frame is None:
            print(f"repro-top: {poller.base_url} unreachable", file=sys.stderr)
            return 1
        print("\n".join(render_lines(frame, poller)))
        if once:
            return 0
        sys.stdout.flush()
        time.sleep(interval)


def run_curses(poller: OpsPoller, interval: float) -> int:
    import curses

    def loop(screen: "curses.window") -> int:
        curses.curs_set(0)
        screen.timeout(int(interval * 1000))
        while True:
            frame = poller.poll()
            screen.erase()
            height, width = screen.getmaxyx()
            if frame is None:
                screen.addstr(0, 0, f"{poller.base_url} unreachable; retrying...")
            else:
                for y, line in enumerate(render_lines(frame, poller)[: height - 1]):
                    try:
                        screen.addstr(y, 0, line[: width - 1])
                    except curses.error:
                        break  # terminal shrank mid-draw
            screen.refresh()
            if screen.getch() in (ord("q"), ord("Q")):
                return 0

    return curses.wrapper(loop)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Live terminal ops console for a repro workflow gateway."
    )
    parser.add_argument("url", help="base URL of the HTTP edge, e.g. http://127.0.0.1:8080")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls (default: 2)")
    parser.add_argument("--once", action="store_true",
                        help="render a single frame and exit (implies --plain)")
    parser.add_argument("--plain", action="store_true",
                        help="print frames to stdout instead of the curses UI")
    args = parser.parse_args(argv)

    poller = OpsPoller(args.url)
    if args.once or args.plain:
        return run_plain(poller, args.interval, once=args.once)
    try:
        return run_curses(poller, args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
