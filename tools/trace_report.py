#!/usr/bin/env python
"""Print per-task span waterfalls from a monitoring database.

Reads the ``task_spans`` table written by the tracing plane
(:mod:`repro.observability.trace`) and renders, for each trace, one
waterfall per attempt: every hop the task crossed (submitted, queued,
routed, dispatched, executing, exec_done, result_sent, result_committed,
delivered), its offset from the trace's first event, the gap to the
previous hop, and a proportional bar — so "where did my task's latency
go?" is answerable from the terminal after (or during) a run.

Usage::

    python tools/trace_report.py runinfo/000/monitoring.db
    python tools/trace_report.py monitoring.db --task 17
    python tools/trace_report.py monitoring.db --trace trace-ab12cd34ef56
    python tools/trace_report.py monitoring.db --run <run_id> --limit 5
    python tools/trace_report.py monitoring.db --slowest 5

``--slowest N`` flips the report from chronological to diagnostic: traces
are ranked by their single worst critical-path hop (the longest gap between
consecutive events of the delivering attempt) and the top N waterfalls are
printed, each annotated with that hop — the straggler post-mortem view.

The database is whatever ``MonitoringHub(store=SQLiteStore(path))`` wrote;
in-memory runs have nothing on disk to report on.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.monitoring.db import SQLiteStore  # noqa: E402
from repro.monitoring.report import critical_path, span_timeline  # noqa: E402

#: Width (characters) of the waterfall bar column.
BAR_WIDTH = 40


def _format_attempt(events: List[Dict[str, Any]], attempt: int, t0: float,
                    span_s: float) -> List[str]:
    """Render one attempt's events as aligned waterfall rows."""
    lines = [f"  attempt {attempt}:"]
    prev_t: Optional[float] = None
    for event in events:
        offset = event["t"] - t0
        gap = 0.0 if prev_t is None else event["t"] - prev_t
        prev_t = event["t"]
        start = int(BAR_WIDTH * offset / span_s) if span_s > 0 else 0
        width = max(1, int(BAR_WIDTH * gap / span_s)) if span_s > 0 else 1
        bar = " " * min(start, BAR_WIDTH - 1) + "█" * min(width, BAR_WIDTH - start)
        lines.append(
            f"    {event['event']:<18} +{offset * 1000:9.3f} ms"
            f"  (Δ {gap * 1000:9.3f} ms)  |{bar:<{BAR_WIDTH}}|"
        )
    return lines


def format_trace(trace_id: str, attempts: Dict[int, List[Dict[str, Any]]]) -> str:
    """One trace's full report: waterfall per attempt + critical-path note."""
    all_events = [e for events in attempts.values() for e in events]
    if not all_events:
        return f"trace {trace_id}: no span events"
    t0 = min(e["t"] for e in all_events)
    span_s = max(e["t"] for e in all_events) - t0
    task_ids = sorted({e["task_id"] for e in all_events if e.get("task_id") is not None})
    header = f"trace {trace_id}"
    if task_ids:
        header += f"  (task {', '.join(str(t) for t in task_ids)})"
    header += f"  total {span_s * 1000:.3f} ms, {len(attempts)} attempt(s)"
    lines = [header]
    for attempt in sorted(attempts):
        lines.extend(_format_attempt(attempts[attempt], attempt, t0, span_s))
    return "\n".join(lines)


def worst_hop(attempts: Dict[int, List[Dict[str, Any]]]) -> Optional[Dict[str, Any]]:
    """The longest critical-path segment of a trace's delivering attempt.

    Computed in-memory from an already-loaded timeline (consecutive-event
    gaps of the last attempt — the same segments ``critical_path`` derives),
    so ranking a whole run doesn't re-query the database per trace.
    """
    if not attempts:
        return None
    events = attempts[max(attempts)]
    worst: Optional[Dict[str, Any]] = None
    for prev, nxt in zip(events, events[1:]):
        duration = nxt["t"] - prev["t"]
        if worst is None or duration > worst["duration_s"]:
            worst = {"from": prev["event"], "to": nxt["event"], "duration_s": duration}
    return worst


def report(db_path: str, run_id: Optional[str] = None,
           task_id: Optional[int] = None, trace_id: Optional[str] = None,
           limit: Optional[int] = None, show_critical_path: bool = False,
           slowest: Optional[int] = None) -> str:
    """Build the full text report for ``db_path`` (the CLI body, testable)."""
    store = SQLiteStore(db_path)
    try:
        traces = span_timeline(store, run_id=run_id, task_id=task_id,
                               trace_id=trace_id)
        if not traces:
            return "no span events matched (tracing disabled, or wrong filters?)"

        def first_t(attempts: Dict[int, List[Dict[str, Any]]]) -> float:
            return min(e["t"] for events in attempts.values() for e in events)

        if slowest is not None:
            ranked = sorted(
                traces.items(),
                key=lambda item: (worst_hop(item[1]) or {"duration_s": 0.0})["duration_s"],
                reverse=True,
            )[:slowest]
            chunks = []
            for tid, attempts in ranked:
                chunk = format_trace(tid, attempts)
                hop = worst_hop(attempts)
                if hop is not None:
                    chunk += (
                        f"\n  slowest hop: {hop['from']} -> {hop['to']}"
                        f" ({hop['duration_s'] * 1000:.3f} ms)"
                    )
                chunks.append(chunk)
            header = (f"top {len(ranked)} of {len(traces)} trace(s)"
                      " by worst critical-path hop")
            return "\n\n".join([header] + chunks)

        ordered = sorted(traces.items(), key=lambda item: first_t(item[1]))
        total = len(ordered)
        if limit is not None:
            ordered = ordered[:limit]
        chunks = [format_trace(tid, attempts) for tid, attempts in ordered]
        if show_critical_path:
            for idx, (tid, _attempts) in enumerate(ordered):
                segments = critical_path(store, tid, run_id=run_id)
                if not segments:
                    continue
                worst = max(segments, key=lambda s: s["duration_s"])
                chunks[idx] += (
                    f"\n  critical hop: {worst['from']} -> {worst['to']}"
                    f" ({worst['duration_s'] * 1000:.3f} ms)"
                )
        if limit is not None and total > limit:
            chunks.append(f"... {total - limit} more trace(s); raise --limit to see them")
        return "\n\n".join(chunks)
    finally:
        store.close()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="Per-task span waterfalls from a monitoring database."
    )
    parser.add_argument("db", help="path to the run's monitoring.db (SQLiteStore)")
    parser.add_argument("--run", help="restrict to one run_id", default=None)
    parser.add_argument("--task", type=int, default=None,
                        help="restrict to one DFK task id")
    parser.add_argument("--trace", default=None,
                        help="restrict to one trace id (as returned to clients)")
    parser.add_argument("--limit", type=int, default=20,
                        help="show at most N traces (default 20; 0 = all)")
    parser.add_argument("--critical-path", action="store_true",
                        help="append each trace's slowest hop")
    parser.add_argument("--slowest", type=int, default=None, metavar="N",
                        help="rank traces by worst critical-path hop and "
                             "show the top N waterfalls")
    args = parser.parse_args(argv)
    if not os.path.exists(args.db):
        print(f"error: {args.db} does not exist", file=sys.stderr)
        return 2
    print(report(
        args.db, run_id=args.run, task_id=args.task, trace_id=args.trace,
        limit=None if args.limit == 0 else args.limit,
        show_critical_path=args.critical_path,
        slowest=args.slowest,
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
